package experiments

import (
	"fmt"

	"randfill/internal/aes"
	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/parexp"
	"randfill/internal/rng"
	"randfill/internal/sim"
)

// aesCBCTrace builds the Figure 6/7 workload: AES-CBC encryption of
// sc.CBCBytes of random input (the paper uses 32 KB).
func aesCBCTrace(sc Scale) mem.Trace {
	src := rng.New(sc.Seed ^ 0xcbc)
	var key, iv [16]byte
	src.Bytes(key[:])
	src.Bytes(iv[:])
	pt := make([]byte, sc.CBCBytes)
	src.Bytes(pt)
	cipher, err := aes.New(key[:])
	if err != nil {
		panic(err)
	}
	tracer := &aes.Tracer{Cipher: cipher, Layout: aes.DefaultLayout()}
	_, trace, err := tracer.EncryptCBC(pt, iv[:])
	if err != nil {
		panic(err)
	}
	return trace
}

// aesEncDecTrace builds the Figure 8 crypto workload: continuous AES
// encryption and decryption (touching all ten tables).
func aesEncDecTrace(sc Scale) mem.Trace {
	src := rng.New(sc.Seed ^ 0xdec)
	var key, iv [16]byte
	src.Bytes(key[:])
	src.Bytes(iv[:])
	pt := make([]byte, sc.CBCBytes)
	src.Bytes(pt)
	cipher, err := aes.New(key[:])
	if err != nil {
		panic(err)
	}
	tracer := &aes.Tracer{Cipher: cipher, Layout: aes.DefaultLayout()}
	ct, encTrace, err := tracer.EncryptCBC(pt, iv[:])
	if err != nil {
		panic(err)
	}
	_, decTrace, err := tracer.DecryptCBC(ct, iv[:])
	if err != nil {
		panic(err)
	}
	return append(encTrace, decTrace...)
}

// runAES runs the CBC trace on one machine/thread configuration and
// returns the thread result.
func runAES(cfg sim.Config, tc sim.ThreadConfig, trace mem.Trace) sim.Result {
	return sim.New(cfg).RunTrace(tc, trace)
}

// encTables returns the five encryption-table regions (the Figure 6
// security-critical data).
func encTables() []mem.Region { return aes.DefaultLayout().EncTableRegions() }

// allTables returns all ten table regions (the Figure 8 security-critical
// data: encryption + decryption).
func allTables() []mem.Region { return aes.DefaultLayout().AllTableRegions() }

// figure6Geometries are the cache shapes of Figure 6.
func figure6Geometries() []cache.Geometry {
	var out []cache.Geometry
	for _, kb := range []int{8, 16, 32} {
		for _, ways := range []int{1, 2, 4} {
			out = append(out, cache.Geometry{SizeBytes: kb * 1024, Ways: ways})
		}
	}
	return out
}

// Figure6 reproduces the cryptographic-workload IPC comparison: for each L1
// geometry, the IPC of PLcache+preload, disable-cache and random fill
// [-16,+15], normalized to the demand-fetch baseline of the same geometry.
func Figure6(sc Scale) *Table {
	trace := aesCBCTrace(sc)
	t := &Table{
		Title:   "Figure 6: normalized IPC of AES-CBC under each defense",
		Headers: []string{"L1 geometry", "baseline", "PLcache+preload", "disable cache", "random fill"},
	}
	geoms := figure6Geometries()
	// Each geometry's four runs are one self-contained work item.
	rows := parexp.Map(sc.engine(), len(geoms), func(i int) [4]float64 {
		g := geoms[i]
		base := func(kind sim.CacheKind) sim.Config {
			cfg := sim.DefaultConfig()
			cfg.L1 = g
			cfg.L1Kind = kind
			cfg.Seed = sc.Seed
			return cfg
		}
		baseline := runAES(base(sim.KindSA), sim.ThreadConfig{}, trace)
		preload := runAES(base(sim.KindPLcache), sim.ThreadConfig{
			Mode: sim.ModePreload, SecretRegions: encTables(), Owner: 1,
		}, trace)
		disable := runAES(base(sim.KindSA), sim.ThreadConfig{Mode: sim.ModeDisableSecret}, trace)
		rf := runAES(base(sim.KindSA), sim.ThreadConfig{
			Mode: sim.ModeRandomFill, Window: rng.Window{A: 16, B: 15},
		}, trace)
		return [4]float64{baseline.IPC(), preload.IPC(), disable.IPC(), rf.IPC()}
	})
	for i, r := range rows {
		t.AddRow(geoms[i].String(), "100.0%",
			pct(r[1]/r[0]), pct(r[2]/r[0]), pct(r[3]/r[0]))
	}
	t.AddNote("paper: disable cache ≈ 55%% for all shapes; PLcache+preload 85%% at 8KB DM rising with size/ways; random fill ≥ 96.5%% at 8KB, ≈ 100%% at 32KB")
	return t
}

// Figure7 reproduces the window-size sensitivity of the AES workload: IPC
// normalized to the same cache with demand fetch, for the SA cache (8 KB DM
// and 32 KB 4-way) and Newcache (8 KB and 32 KB).
func Figure7(sc Scale) *Table {
	trace := aesCBCTrace(sc)
	t := &Table{
		Title:   "Figure 7: normalized IPC of AES vs random fill window size",
		Headers: []string{"window", "8KB DM SA", "32KB 4-way SA", "8KB Newcache", "32KB Newcache"},
	}
	configs := []struct {
		kind sim.CacheKind
		geom cache.Geometry
	}{
		{sim.KindSA, cache.Geometry{SizeBytes: 8 * 1024, Ways: 1}},
		{sim.KindSA, cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}},
		{sim.KindNewcache, cache.Geometry{SizeBytes: 8 * 1024, Ways: 1}},
		{sim.KindNewcache, cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}},
	}
	eng := sc.engine()
	baselines := parexp.Map(eng, len(configs), func(i int) float64 {
		cfg := sim.DefaultConfig()
		cfg.L1 = configs[i].geom
		cfg.L1Kind = configs[i].kind
		cfg.Seed = sc.Seed
		return runAES(cfg, sim.ThreadConfig{}, trace).IPC()
	})
	sizes := []int{1, 2, 4, 8, 16, 32}
	// One work item per (size, config) cell, index-ordered back into rows.
	cells := parexp.Map(eng, len(sizes)*len(configs), func(k int) float64 {
		size, c := sizes[k/len(configs)], configs[k%len(configs)]
		cfg := sim.DefaultConfig()
		cfg.L1 = c.geom
		cfg.L1Kind = c.kind
		cfg.Seed = sc.Seed
		tc := sim.ThreadConfig{}
		if size > 1 {
			tc = sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: rng.Symmetric(size)}
		}
		return runAES(cfg, tc, trace).IPC()
	})
	for si, size := range sizes {
		row := []string{fmt.Sprintf("%d", size)}
		for i := range configs {
			row = append(row, pct(cells[si*len(configs)+i]/baselines[i]))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: SA insensitive to window size; Newcache degrades with window (max -9%% at size 32 on 8KB)")
	return t
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
