package experiments

import (
	"sort"
	"strconv"
	"strings"
	"testing"
)

// parsePct converts a "97.9%" cell back to a ratio.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent cell %q: %v", cell, err)
	}
	return v / 100
}

func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%"), 64)
	if err != nil {
		t.Fatalf("bad cell %q: %v", cell, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "x", Headers: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddNote("n=%d", 3)
	s := tb.String()
	for _, want := range []string{"=== x ===", "a", "bb", "1", "2", "note: n=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := []string{"Figure2", "Table3", "Figure5", "Figure6", "Figure7",
		"Figure8", "Figure9", "Figure10", "Traffic", "Prefetch", "Defenses",
		"AblationWindowShape", "AblationFillQueue", "AblationMissQueue",
		"AblationDropOnHit", "AblationL2RandomFill", "Hierarchy3",
		"ConstantTime",
		"InformingDoS", "AdaptiveWindow", "Equation4", "MissQueueSecurity",
		"OccupancyMatrix", "PolicyMatrix"}
	if len(All()) != len(names) {
		t.Fatalf("registry has %d experiments, want %d", len(All()), len(names))
	}
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			t.Errorf("experiment %s not registered", n)
		}
	}
	if _, ok := ByName("figure5"); !ok {
		t.Error("lookup is not case-insensitive")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name found")
	}
}

func TestFigure5Shape(t *testing.T) {
	tb := Figure5()
	if len(tb.Rows) != 6 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// Capacity decreases monotonically down each column, and the larger-M
	// columns sit below the smaller-M ones (smaller boundary effect).
	for col := 1; col <= 4; col++ {
		prev := 2.0
		for _, row := range tb.Rows {
			v := parseF(t, row[col])
			if v > prev {
				t.Errorf("column %d not monotone: %v after %v", col, v, prev)
			}
			prev = v
		}
	}
	for _, row := range tb.Rows {
		if parseF(t, row[4]) > parseF(t, row[1]) {
			t.Errorf("M=128 leaks more than M=8 at window/M=%s", row[0])
		}
	}
	// Window = 2M reduces capacity by >10x (paper's headline claim).
	if v := parseF(t, tb.Rows[3][2]); v > 0.1 {
		t.Errorf("M=16 at window 2M: normalized capacity %v > 0.1", v)
	}
}

func TestFigure6Shape(t *testing.T) {
	tb := Figure6(QuickScale())
	if len(tb.Rows) != 9 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		preload := parsePct(t, row[2])
		disable := parsePct(t, row[3])
		rf := parsePct(t, row[4])
		// Disable-cache is by far the worst defense everywhere.
		if disable > 0.8 {
			t.Errorf("%s: disable-cache at %v, want heavy degradation", row[0], disable)
		}
		if disable > rf || disable > preload {
			t.Errorf("%s: disable-cache (%v) not the slowest (preload %v, rf %v)",
				row[0], disable, preload, rf)
		}
		// Random fill stays within a modest hit of baseline.
		if rf < 0.80 || rf > 1.1 {
			t.Errorf("%s: random fill at %v, want near baseline", row[0], rf)
		}
	}
	// Random fill on the 32KB 4-way cache is essentially free.
	if rf := parsePct(t, tb.Rows[8][4]); rf < 0.95 {
		t.Errorf("32KB 4-way random fill at %v, want >= 0.95", rf)
	}
	// Random fill hurts the direct-mapped 8KB shape more than 4-way 32KB.
	if parsePct(t, tb.Rows[0][4]) > parsePct(t, tb.Rows[8][4]) {
		t.Error("random fill on 8KB DM not worse than on 32KB 4-way")
	}
}

func TestFigure7Shape(t *testing.T) {
	tb := Figure7(QuickScale())
	if len(tb.Rows) != 6 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// Window size 1 is the baseline (100%) everywhere.
	for col := 1; col <= 4; col++ {
		if v := parsePct(t, tb.Rows[0][col]); v != 1 {
			t.Errorf("col %d window 1 = %v, want 1", col, v)
		}
	}
	// The 32KB 4-way SA cache is insensitive to the window (paper claim).
	for _, row := range tb.Rows {
		if v := parsePct(t, row[2]); v < 0.9 {
			t.Errorf("32KB 4-way SA at window %s: %v, want >= 0.9", row[0], v)
		}
	}
	// Newcache at 8KB with window 32 shows the worst degradation of the
	// Newcache columns (paper: max degradation there).
	last := parsePct(t, tb.Rows[5][3])
	if last > 0.97 {
		t.Errorf("8KB Newcache at window 32 = %v, want visible degradation", last)
	}
}

func TestFigure9Shape(t *testing.T) {
	tb := Figure9(QuickScale())
	if len(tb.Rows) != 8 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	byName := map[string][]string{}
	for _, row := range tb.Rows {
		byName[row[0]] = row
	}
	// Headers: benchmark, d=-16,-8,-4,-2,-1,+1,+2,+4,+8,+16 (indices 1..10).
	// lbm and libquantum: strong forward locality at d=+4 (index 7).
	for _, name := range []string{"lbm", "libquantum"} {
		if v := parseF(t, byName[name][7]); v < 0.5 {
			t.Errorf("%s Eff(+4) = %v, want >= 0.5", name, v)
		}
	}
	// sjeng and astar: no useful locality anywhere.
	for _, name := range []string{"sjeng", "astar"} {
		if v := parseF(t, byName[name][7]); v > 0.3 {
			t.Errorf("%s Eff(+4) = %v, want < 0.3", name, v)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	tb := Figure10(QuickScale())
	if len(tb.Rows) != 16 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	rows := map[string]map[string][]string{}
	for _, row := range tb.Rows {
		if rows[row[0]] == nil {
			rows[row[0]] = map[string][]string{}
		}
		rows[row[0]][row[1]] = row
	}
	// Column indices: 2=[0,0] ... 6=[0,15] 7=[0,31].
	const base, fwd15 = 2, 6

	// Streaming benchmarks: forward windows cut MPKI and raise IPC.
	for _, name := range []string{"lbm", "libquantum"} {
		mpki := rows[name]["MPKI"]
		ipc := rows[name]["IPC"]
		if parseF(t, mpki[fwd15]) >= parseF(t, mpki[base]) {
			t.Errorf("%s: MPKI did not drop under [0,15]", name)
		}
		if parsePct(t, ipc[fwd15]) <= 1.05 {
			t.Errorf("%s: IPC %v under [0,15], want clear gain", name, ipc[fwd15])
		}
	}
	// libquantum's gain is the largest in the table (the paper's star).
	lqGain := parsePct(t, rows["libquantum"]["IPC"][fwd15])
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name == "libquantum" {
			continue
		}
		if g := parsePct(t, rows[name]["IPC"][fwd15]); g > lqGain {
			t.Errorf("%s gains more than libquantum at [0,15]: %v > %v", name, g, lqGain)
		}
	}
	// Narrow-locality benchmarks degrade under random fill.
	for _, name := range []string{"sjeng", "astar", "h264ref", "bzip2"} {
		if v := parsePct(t, rows[name]["IPC"][fwd15]); v >= 1.0 {
			t.Errorf("%s: IPC %v under [0,15], want degradation", name, v)
		}
	}
	// Forward windows beat bidirectional ones for the streaming pair
	// (column 6 = [0,15] vs column 11 = [-16,15]... index: headers are
	// benchmark, metric, then 11 windows; [-16,15] is the last column).
	last := len(tb.Headers) - 1
	for _, name := range []string{"lbm", "libquantum"} {
		if parsePct(t, rows[name]["IPC"][fwd15]) < parsePct(t, rows[name]["IPC"][last]) {
			t.Errorf("%s: bidirectional window beats forward window", name)
		}
	}
}

func TestTrafficShape(t *testing.T) {
	tb := Traffic(QuickScale())
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		l2 := parseF(t, row[1])
		memT := parseF(t, row[2])
		// Random fill adds L2 traffic; memory traffic grows less than
		// L2 traffic (most fills are eventually useful).
		if l2 <= 0 {
			t.Errorf("%s: L2 traffic %v%%, want an increase", row[0], l2)
		}
		if memT > 25 {
			t.Errorf("%s: memory traffic +%v%%, want modest growth", row[0], memT)
		}
	}
}

func TestPrefetchComparisonShape(t *testing.T) {
	tb := PrefetchComparison(QuickScale())
	for _, row := range tb.Rows {
		tagged := parsePct(t, row[2])
		rf := parsePct(t, row[3])
		// The paper's Section VII claim: random fill beats the tagged
		// next-line prefetcher on both streaming benchmarks.
		if rf <= tagged {
			t.Errorf("%s: random fill (%v) does not beat tagged prefetch (%v)",
				row[0], rf, tagged)
		}
		if rf <= 1.05 {
			t.Errorf("%s: random fill gain %v, want > 1.05", row[0], rf)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("SMT sweep is slow")
	}
	tb := Figure8(QuickScale())
	// 2 geometries x (8 benchmarks + average) rows.
	if len(tb.Rows) != 18 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] != "average" {
			continue
		}
		preload := parsePct(t, row[3])
		rf := parsePct(t, row[4])
		// Random fill must not hurt co-running programs on average;
		// PLcache+preload must hurt them more than random fill does.
		if rf < 0.95 {
			t.Errorf("%s: random fill average %v, want >= 0.95", row[0], rf)
		}
		if preload >= rf {
			t.Errorf("%s: preload average %v not below random fill %v", row[0], preload, rf)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing chart collection is slow")
	}
	tb := Figure2(QuickScale())
	if len(tb.Rows) != 18 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// The true XOR row must show a below-average time (the dip of
	// Figure 2). Its cell is the last row.
	truth := tb.Rows[len(tb.Rows)-1]
	v, err := strconv.ParseFloat(strings.TrimPrefix(truth[1], "+"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if v >= 0 {
		t.Errorf("true-XOR mean deviation %v, want negative", v)
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("attack search sweep is slow")
	}
	sc := QuickScale()
	sc.MonteCarloTrials = 20000
	sc.AttackMaxSamples = 1 << 13 // keep the 12-cell sweep fast
	sc.AttackBatch = 1 << 12
	tb := Table3(sc)
	if len(tb.Rows) != 12 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// P1-P2 decays monotonically (within noise) down each cache block.
	for block := 0; block < 2; block++ {
		prev := 1.0
		for i := 0; i < 6; i++ {
			row := tb.Rows[block*6+i]
			v, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				t.Fatal(err)
			}
			if v > prev+0.02 {
				t.Errorf("%s window %s: P1-P2 %v rose above %v", row[0], row[1], v, prev)
			}
			prev = v
		}
		// Window 32 closes the channel.
		last, _ := strconv.ParseFloat(tb.Rows[block*6+5][2], 64)
		if last > 0.03 {
			t.Errorf("block %d window 32: P1-P2 = %v, want ~0", block, last)
		}
	}
}

func TestDefenseMatrixShape(t *testing.T) {
	tb := DefenseMatrix(QuickScale())
	if len(tb.Rows) != 7 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	get := func(name string) []string {
		for _, row := range tb.Rows {
			if row[0] == name {
				return row
			}
		}
		t.Fatalf("row %q missing", name)
		return nil
	}
	// The Section VIII pattern, cell by cell.
	sa := get("SA (demand fetch)")
	if parsePct(t, sa[1]) < 0.95 || parsePct(t, sa[2]) < 0.95 {
		t.Errorf("SA must be broken by both attacks: %v", sa)
	}
	for _, name := range []string{"NoMo", "RPcache", "Newcache"} {
		row := get(name)
		if parsePct(t, row[1]) > 0.2 {
			t.Errorf("%s: prime-probe accuracy %s, want ≈ chance", name, row[1])
		}
		if parsePct(t, row[2]) < 0.95 {
			t.Errorf("%s: flush-reload accuracy %s, want 1 (reuse attacks unaffected)", name, row[2])
		}
	}
	rf := get("RandomFill+SA")
	if parsePct(t, rf[2]) > 0.1 {
		t.Errorf("RandomFill+SA: flush-reload accuracy %s, want ≈ 1/32", rf[2])
	}
	if parsePct(t, rf[1]) < parsePct(t, get("RandomFill+RPcache")[1]) {
		// Random fill alone must leak at least as much set contention
		// as the composed design.
		t.Log("note: composed design leaked more contention than RF alone (noise)")
	}
	for _, name := range []string{"RandomFill+RPcache", "RandomFill+Newcache"} {
		row := get(name)
		if parsePct(t, row[1]) > 0.2 || parsePct(t, row[2]) > 0.1 {
			t.Errorf("%s: composition must close both channels: %v", name, row)
		}
	}
}
