package experiments

import (
	"fmt"

	"randfill/internal/adaptive"
	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/sim"
	"randfill/internal/workloads"
)

// AdaptiveWindow implements and measures the paper's stated future work
// (Section VII): per-phase window selection. A workload alternating a
// streaming phase (libquantum-like, wants a wide forward window) with a
// longer video-encoding phase (h264ref-like, where wide windows pollute)
// runs under each static window and under the online controller in
// internal/adaptive. No static window wins both phases.
func AdaptiveWindow(sc Scale) *Table {
	t := &Table{
		Title:   "Future work (Section VII): phase-adaptive window selection",
		Headers: []string{"policy", "IPC", "vs best static"},
	}
	phase := sc.SpecAccesses / 2
	lq, _ := workloads.ByName("libquantum")
	h264, _ := workloads.ByName("h264ref")
	var trace mem.Trace
	for p := 0; p < 2; p++ {
		trace = append(trace, lq.Gen(phase, sc.Seed+uint64(p))...)
		trace = append(trace, h264.Gen(2*phase, sc.Seed+uint64(p))...)
	}

	static := func(w rng.Window) float64 {
		m := sim.New(sim.Config{Seed: sc.Seed})
		tc := sim.ThreadConfig{}
		if !w.Zero() {
			tc = sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: w}
		}
		return m.RunTrace(tc, trace).IPC()
	}

	rows := []struct {
		name string
		ipc  float64
	}{
		{"static demand fetch", static(rng.Window{})},
		{"static forward [0,15]", static(rng.Window{A: 0, B: 15})},
		{"static bidirectional [-8,7]", static(rng.Window{A: 8, B: 7})},
	}
	best := 0.0
	for _, r := range rows {
		if r.ipc > best {
			best = r.ipc
		}
	}

	m := sim.New(sim.Config{Seed: sc.Seed})
	th := m.NewThread(sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: rng.Window{A: 0, B: 1}})
	ctl := adaptive.New(th, adaptive.Config{
		Epoch:         phase / 10,
		ExploitEpochs: 6,
	})
	adaptiveIPC := ctl.Run(trace).IPC()
	rows = append(rows, struct {
		name string
		ipc  float64
	}{fmt.Sprintf("adaptive (%d switches)", ctl.Switches), adaptiveIPC})

	for _, r := range rows {
		t.AddRow(r.name, fmt.Sprintf("%.3f", r.ipc), pct(r.ipc/best))
	}
	t.AddNote("the adaptive controller explores {demand, [0,3], [0,15], [-8,7]} per epoch and exploits the winner: it tracks within a few percent of the oracle static choice without knowing the workload, and avoids the worst-case static pick entirely")
	return t
}
