package experiments

import (
	"context"
	"fmt"
	"strings"

	"randfill/internal/checkpoint"
	"randfill/internal/parexp"
	"randfill/internal/rng"
)

// configHash binds a checkpoint to everything that determines a shard's
// bytes: the experiment, every budget knob, the master seed, the fixed
// shard count, and the RNG stream version. Workers is deliberately absent —
// worker-count invariance means a run checkpointed at -workers 8 may resume
// at -workers 1 and still reproduce the uninterrupted output exactly.
func (sc Scale) configHash(exp string) uint64 {
	return checkpoint.Hash(
		exp,
		fmt.Sprintf("mc=%d", sc.MonteCarloTrials),
		fmt.Sprintf("cap=%d", sc.AttackMaxSamples),
		fmt.Sprintf("batch=%d", sc.AttackBatch),
		fmt.Sprintf("fig2=%d", sc.Figure2Samples),
		fmt.Sprintf("cbc=%d", sc.CBCBytes),
		fmt.Sprintf("spec=%d", sc.SpecAccesses),
		fmt.Sprintf("seed=%d", sc.Seed),
		fmt.Sprintf("shards=%d", parexp.Shards),
		fmt.Sprintf("stream=%d", rng.StreamVersion),
	)
}

// unitPlan is one resumable experiment's fixed work-unit plan: n units,
// each a pure function of (Scale, i) with an exact binary codec. It is the
// single description behind both execution paths — the in-process runShards
// driver and, type-erased through PlanFor, the multi-process fabric — so a
// unit computes identical bytes no matter which path ran it.
type unitPlan[T any] struct {
	exp       string
	n         int
	seed      func(i int) uint64
	run       func(ctx context.Context, i int) (T, error)
	marshal   func(T) ([]byte, error)
	unmarshal func([]byte) (T, error)
}

// meta is unit i's checkpoint identity under sc.
func (p unitPlan[T]) meta(sc Scale, hash uint64, i int) checkpoint.Meta {
	return checkpoint.Meta{
		Experiment:    p.exp,
		Shard:         i,
		Seed:          p.seed(i),
		ConfigHash:    hash,
		StreamVersion: rng.StreamVersion,
	}
}

// runShards executes a unitPlan's independent work units with optional
// checkpointing, and is the primitive every resumable experiment is built
// on. Unit i's result must be a pure function of (sc, i) — never of worker
// count or of other units — which is what makes the recovery story simple:
// a unit either completed (its checkpoint holds the exact accumulator
// bytes) or it didn't (it re-runs from scratch).
//
// With sc.Checkpoint set, each unit is flushed through the store the moment
// it completes, inside the worker, so a cancellation or crash between units
// loses only work in flight. With sc.Resume also set, units whose
// checkpoint loads (and whose meta — seed, config hash, stream version —
// matches) are not re-run; torn, corrupt, or mismatched checkpoints read as
// missing and the unit re-runs. Results are returned in unit order
// regardless of which were restored.
//
// sc.Track, when set, observes each executed unit starting and durably
// finishing (restored units are never reported): the hook behind the
// hard-kill path's best-effort aborted markers.
func runShards[T any](ctx context.Context, sc Scale, p unitPlan[T]) ([]T, error) {
	hash := sc.configHash(p.exp)
	meta := func(i int) checkpoint.Meta { return p.meta(sc, hash, i) }

	out := make([]T, p.n)
	restored := make([]bool, p.n)
	if sc.Checkpoint != nil && sc.Resume {
		for i := 0; i < p.n; i++ {
			payload, ok, err := sc.Checkpoint.Get(meta(i))
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			v, err := p.unmarshal(payload)
			if err != nil {
				continue // undecodable payload: treat as missing, re-run
			}
			out[i] = v
			restored[i] = true
		}
	}
	var missing []int
	for i := 0; i < p.n; i++ {
		if !restored[i] {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return out, nil
	}
	err := sc.engine().ForEachCtx(ctx, len(missing), func(ctx context.Context, k int) error {
		i := missing[k]
		if sc.Track != nil {
			sc.Track(meta(i), false)
		}
		v, err := p.run(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		if sc.Checkpoint != nil {
			data, err := p.marshal(v)
			if err != nil {
				return err
			}
			if err := sc.Checkpoint.Put(meta(i), data); err != nil {
				return err
			}
		}
		if sc.Track != nil {
			sc.Track(meta(i), true)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WorkPlan is a type-erased unitPlan: the shape internal/fabric schedules
// across processes. RunUnit executes one unit and publishes exactly one
// checkpoint through store; it is the same computation runShards performs
// for that unit, so a fabric run's store is byte-identical to a solo run's.
type WorkPlan struct {
	// Name is the experiment name as registered in All().
	Name string
	// Units is the number of independent work units.
	Units int
	// Meta returns unit i's checkpoint identity.
	Meta func(i int) checkpoint.Meta
	// RunUnit computes unit i and flushes it through store.
	RunUnit func(ctx context.Context, i int, store *checkpoint.Store) error
}

// exportPlan type-erases a unitPlan for the fabric.
func exportPlan[T any](sc Scale, p unitPlan[T]) WorkPlan {
	hash := sc.configHash(p.exp)
	meta := func(i int) checkpoint.Meta { return p.meta(sc, hash, i) }
	return WorkPlan{
		Name:  p.exp,
		Units: p.n,
		Meta:  meta,
		RunUnit: func(ctx context.Context, i int, store *checkpoint.Store) error {
			v, err := p.run(ctx, i)
			if err != nil {
				return err
			}
			data, err := p.marshal(v)
			if err != nil {
				return err
			}
			return store.Put(meta(i), data)
		},
	}
}

// PlanFor returns the named resumable experiment's work-unit plan under sc.
// Only the resumable experiments (the ones whose registry entries honor
// Scale.Checkpoint) have plans; ok is false for every other name. Every
// process in a fabric derives the plan from the same (name, Scale), so
// unit identities agree everywhere — a lease whose identity doesn't match
// is foreign and is refused, not guessed at.
func PlanFor(name string, sc Scale) (WorkPlan, bool) {
	switch {
	case strings.EqualFold(name, "Figure2"):
		return exportPlan(sc, figure2Plan(sc)), true
	case strings.EqualFold(name, "Table3"):
		return exportPlan(sc, table3Plan(sc)), true
	case strings.EqualFold(name, "MissQueueSecurity"):
		return exportPlan(sc, missQueuePlan(sc)), true
	case strings.EqualFold(name, "OccupancyMatrix"):
		return exportPlan(sc, occupancyPlan(sc)), true
	case strings.EqualFold(name, "PolicyMatrix"):
		return exportPlan(sc, policyPlan(sc)), true
	}
	return WorkPlan{}, false
}
