package experiments

import (
	"context"
	"fmt"

	"randfill/internal/checkpoint"
	"randfill/internal/parexp"
	"randfill/internal/rng"
)

// configHash binds a checkpoint to everything that determines a shard's
// bytes: the experiment, every budget knob, the master seed, the fixed
// shard count, and the RNG stream version. Workers is deliberately absent —
// worker-count invariance means a run checkpointed at -workers 8 may resume
// at -workers 1 and still reproduce the uninterrupted output exactly.
func (sc Scale) configHash(exp string) uint64 {
	return checkpoint.Hash(
		exp,
		fmt.Sprintf("mc=%d", sc.MonteCarloTrials),
		fmt.Sprintf("cap=%d", sc.AttackMaxSamples),
		fmt.Sprintf("batch=%d", sc.AttackBatch),
		fmt.Sprintf("fig2=%d", sc.Figure2Samples),
		fmt.Sprintf("cbc=%d", sc.CBCBytes),
		fmt.Sprintf("spec=%d", sc.SpecAccesses),
		fmt.Sprintf("seed=%d", sc.Seed),
		fmt.Sprintf("shards=%d", parexp.Shards),
		fmt.Sprintf("stream=%d", rng.StreamVersion),
	)
}

// runShards executes n independent work units of one experiment with
// optional checkpointing, and is the primitive every resumable experiment
// is built on. Unit i's result must be a pure function of (sc, i) — never
// of worker count or of other units — which is what makes the recovery
// story simple: a unit either completed (its checkpoint holds the exact
// accumulator bytes) or it didn't (it re-runs from scratch).
//
// With sc.Checkpoint set, each unit is flushed through the store the moment
// it completes, inside the worker, so a cancellation or crash between units
// loses only work in flight. With sc.Resume also set, units whose
// checkpoint loads (and whose meta — seed, config hash, stream version —
// matches) are not re-run; torn, corrupt, or mismatched checkpoints read as
// missing and the unit re-runs. Results are returned in unit order
// regardless of which were restored.
func runShards[T any](ctx context.Context, sc Scale, exp string, n int,
	seed func(i int) uint64,
	run func(ctx context.Context, i int) (T, error),
	marshal func(T) ([]byte, error),
	unmarshal func([]byte) (T, error),
) ([]T, error) {
	hash := sc.configHash(exp)
	meta := func(i int) checkpoint.Meta {
		return checkpoint.Meta{
			Experiment:    exp,
			Shard:         i,
			Seed:          seed(i),
			ConfigHash:    hash,
			StreamVersion: rng.StreamVersion,
		}
	}

	out := make([]T, n)
	restored := make([]bool, n)
	if sc.Checkpoint != nil && sc.Resume {
		for i := 0; i < n; i++ {
			payload, ok, err := sc.Checkpoint.Get(meta(i))
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			v, err := unmarshal(payload)
			if err != nil {
				continue // undecodable payload: treat as missing, re-run
			}
			out[i] = v
			restored[i] = true
		}
	}
	var missing []int
	for i := 0; i < n; i++ {
		if !restored[i] {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return out, nil
	}
	err := sc.engine().ForEachCtx(ctx, len(missing), func(ctx context.Context, k int) error {
		i := missing[k]
		v, err := run(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		if sc.Checkpoint != nil {
			data, err := marshal(v)
			if err != nil {
				return err
			}
			if err := sc.Checkpoint.Put(meta(i), data); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
