package experiments

import (
	"context"
	"fmt"

	"randfill/internal/attacks"
	"randfill/internal/cache"
	"randfill/internal/rng"
	"randfill/internal/securecache"
	"randfill/internal/sim"
)

// policyMatrixVictimSizes is the occupancy sweep of the policy matrix: the
// two ends of the OccupancyMatrix sweep, enough to score the channel open or
// closed without paying the full four-point sweep 42 times.
var policyMatrixVictimSizes = []int{32, 96}

// policyCell evaluates one (policy, design) pair: the reuse and occupancy
// channels plus AES-CBC IPC/MPKI, exactly the occupancyCell protocol but with
// the replacement policy overridden on both the attack caches (via
// securecache.Config.Policy) and the simulator L1 (via Config.L1Policy). The
// per-channel budgets are a fraction of OccupancyMatrix's because the matrix
// has six times the cells.
func policyCell(sc Scale, pol string, d securecache.Design, seed uint64) occCell {
	mk := func(geom cache.Geometry) func(src *rng.Source) securecache.SecureCache {
		return func(src *rng.Source) securecache.SecureCache {
			return d.New(securecache.Config{Geom: geom, Policy: pol}, src)
		}
	}

	reuse := attacks.Reuse(attacks.ReuseConfig{
		NewCache: mk(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}),
		Region:   t4Region(),
		Pad:      16,
		Trials:   sc.MonteCarloTrials / 40,
		Seed:     seed,
	})

	occ := attacks.Occupancy(attacks.OccupancyConfig{
		NewCache:    mk(cache.Geometry{SizeBytes: 8 * 1024, Ways: 4}), // 128 lines
		Lines:       96,
		VictimSizes: policyMatrixVictimSizes,
		Trials:      sc.MonteCarloTrials / 200,
		Seed:        seed,
	})

	cfg := sim.DefaultConfig()
	cfg.Seed = sc.Seed
	cfg.L1Policy = pol
	tc := sim.ThreadConfig{}
	if d.Name == "randfill" {
		cfg.L1Kind = sim.KindSA
		tc = sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: rng.Symmetric(32)}
	} else {
		cfg.L1Kind = sim.CacheKind(d.Name)
	}
	res := runAES(cfg, tc, aesCBCTrace(sc))

	return occCell{
		reuseAcc: reuse.Accuracy, reuseMI: reuse.MutualInfo,
		occAcc: occ.Accuracy, occMI: occ.MutualInfo,
		ipc: res.IPC(), mpki: res.MPKI(),
	}
}

// policyPlan is PolicyMatrix's work-unit plan: one (policy, design) cell
// per unit, policy-major in registry order. Per-unit seeds derive from the
// master seed through a dedicated stream (distinct from OccupancyMatrix's
// 0x0cc9), so cells are independent pure functions of (Scale, index).
func policyPlan(sc Scale) unitPlan[occCell] {
	policies := cache.PolicyNames()
	designs := securecache.All()
	seedFor := func(i int) uint64 {
		return rng.New(sc.Seed ^ 0x9011c).SplitSeed(uint64(i + 1))
	}
	return unitPlan[occCell]{
		exp:  "PolicyMatrix",
		n:    len(policies) * len(designs),
		seed: seedFor,
		run: func(_ context.Context, i int) (occCell, error) {
			return policyCell(sc, policies[i/len(designs)], designs[i%len(designs)], seedFor(i)), nil
		},
		marshal: func(c occCell) ([]byte, error) { return c.MarshalBinary() },
		unmarshal: func(data []byte) (occCell, error) {
			var c occCell
			err := c.UnmarshalBinary(data)
			return c, err
		},
	}
}

// PolicyMatrix is the non-resumable entry point (panics on error).
func PolicyMatrix(sc Scale) *Table {
	t, err := PolicyMatrixCtx(context.Background(), sc)
	if err != nil {
		panic(err)
	}
	return t
}

// PolicyMatrixCtx sweeps every replacement policy across every registered
// secure-cache design: the Peters et al. axis that the design papers mostly
// fix at one policy. Each (policy, design) cell scores the reuse and
// occupancy channels and the AES-CBC IPC/MPKI of the combined architecture.
// The work unit is one cell, restored in (policy-major, registry-order)
// order, so the emitted table is byte-identical across worker counts and
// across kill/resume boundaries.
func PolicyMatrixCtx(ctx context.Context, sc Scale) (*Table, error) {
	policies := cache.PolicyNames()
	designs := securecache.All()
	cells, err := runShards(ctx, sc, policyPlan(sc))
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Policy matrix: replacement policy x secure cache design, channels vs performance",
		Headers: []string{"policy", "design", "reuse acc", "reuse MI (bits)",
			"occupancy acc", "occupancy MI (bits)", "AES IPC", "AES MPKI"},
	}
	for i, c := range cells {
		t.AddRow(policies[i/len(designs)], designs[i%len(designs)].Name,
			fmt.Sprintf("%.3f", c.reuseAcc), fmt.Sprintf("%.3f", c.reuseMI),
			fmt.Sprintf("%.3f", c.occAcc), fmt.Sprintf("%.3f", c.occMI),
			fmt.Sprintf("%.3f", c.ipc), fmt.Sprintf("%.2f", c.mpki))
	}
	t.AddNote("reuse: flush+reload over the %d-line AES table +/-16 lines, %d trials (chance acc 1/16, max MI 4 bits)",
		t4Region().NumLines(), sc.MonteCarloTrials/40)
	t.AddNote("occupancy: 96-line prime on a 128-line cache, victim sweep %v, %d trials/size (chance acc 1/2, max MI 1 bit); no shared addresses",
		policyMatrixVictimSizes, sc.MonteCarloTrials/200)
	t.AddNote("performance: AES-CBC (%d bytes) as the simulator L1 under the same policy; randfill = SA + window [-16,+15], others demand fill",
		sc.CBCBytes)
	t.AddNote("policy overrides victim selection only; placement randomization (index keys, remaps) is unchanged")
	return t, nil
}
