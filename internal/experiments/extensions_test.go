package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestConstantTimeRanking(t *testing.T) {
	tb := ConstantTime(QuickScale())
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	get := func(name string) float64 {
		for _, row := range tb.Rows {
			if row[0] == name {
				return parsePct(t, row[1])
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	disable := get("disable cache")
	informing := get("informing loads")
	preload := get("PLcache+preload")
	rf := get("random fill [-16,+15]")
	// Paper's qualitative ranking under eviction pressure.
	if !(disable < informing) {
		t.Errorf("disable (%v) not below informing loads (%v)", disable, informing)
	}
	if !(informing < preload) {
		t.Errorf("informing loads (%v) not below PLcache+preload (%v)", informing, preload)
	}
	if rf < 0.85 {
		t.Errorf("random fill at %v, want near baseline", rf)
	}
	// Informing loads must actually have trapped many times.
	for _, row := range tb.Rows {
		if row[0] == "informing loads" {
			n, err := strconv.Atoi(row[2])
			if err != nil || n < 100 {
				t.Errorf("informing traps = %s, want many under an 8KB cache", row[2])
			}
		}
	}
}

func TestInformingDoSShape(t *testing.T) {
	tb := InformingDoS(QuickScale())
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// The informing-loads victim suffers more from the evicting
	// co-runner than the random fill victim, and its trap count
	// explodes while random fill has none.
	inf := parsePct(t, tb.Rows[0][3])
	rf := parsePct(t, tb.Rows[1][3])
	if inf >= rf {
		t.Errorf("informing-loads slowdown %v not worse than random fill %v", inf, rf)
	}
	infTraps, _ := strconv.Atoi(tb.Rows[0][4])
	rfTraps, _ := strconv.Atoi(tb.Rows[1][4])
	if infTraps < 100 {
		t.Errorf("informing traps under DoS = %d, want amplification", infTraps)
	}
	if rfTraps != 0 {
		t.Errorf("random fill victim trapped %d times", rfTraps)
	}
}

func TestAblationWindowShape(t *testing.T) {
	tb := AblationWindowShape(QuickScale())
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// All window shapes keep the security signal small at size 16.
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v > 0.08 {
			t.Errorf("%s: P1-P2 = %v, want small", row[0], v)
		}
	}
	// Only the forward window delivers the streaming speedup.
	fwd := parsePct(t, tb.Rows[0][2])
	back := parsePct(t, tb.Rows[1][2])
	if fwd < 1.1 {
		t.Errorf("forward window IPC %v, want clear speedup", fwd)
	}
	if back > fwd {
		t.Errorf("backward window (%v) beats forward (%v)", back, fwd)
	}
}

func TestAblationMissQueueMonotone(t *testing.T) {
	tb := AblationMissQueue(QuickScale())
	prev := 0.0
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v+0.01 < prev {
			t.Errorf("IPC fell from %v to %v with more miss-queue entries", prev, v)
		}
		prev = v
	}
}

func TestAblationDropOnHitSavesBandwidth(t *testing.T) {
	tb := AblationDropOnHit(QuickScale())
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	withDrop := parsePct(t, tb.Rows[0][2])
	without := parsePct(t, tb.Rows[1][2])
	if without <= withDrop {
		t.Errorf("ablating the drop check did not raise L2 traffic: %v vs %v", without, withDrop)
	}
}

func TestAblationL2RandomFillNegligible(t *testing.T) {
	tb := AblationL2RandomFill(QuickScale())
	l1 := parsePct(t, tb.Rows[0][1])
	both := parsePct(t, tb.Rows[1][1])
	// Paper: negligible difference between L1-only and L1+L2.
	if diff := l1 - both; diff > 0.06 || diff < -0.06 {
		t.Errorf("L1-only %v vs L1+L2 %v: difference not negligible", l1, both)
	}
}

func TestAblationFillQueueRuns(t *testing.T) {
	tb := AblationFillQueue(QuickScale())
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if n, err := strconv.Atoi(row[1]); err != nil || n == 0 {
			t.Errorf("depth %s: no fills landed", row[0])
		}
	}
}

func TestAdaptiveWindowShapeExperiment(t *testing.T) {
	tb := AdaptiveWindow(QuickScale())
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	statics := make([]float64, 3)
	for i := 0; i < 3; i++ {
		v, err := strconv.ParseFloat(tb.Rows[i][1], 64)
		if err != nil {
			t.Fatal(err)
		}
		statics[i] = v
	}
	adaptiveIPC, err := strconv.ParseFloat(tb.Rows[3][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	best, worst := statics[0], statics[0]
	for _, v := range statics[1:] {
		if v > best {
			best = v
		}
		if v < worst {
			worst = v
		}
	}
	// The controller must avoid the worst static choice and track the
	// oracle static within its exploration overhead.
	if adaptiveIPC <= worst {
		t.Errorf("adaptive IPC %v not above the worst static %v", adaptiveIPC, worst)
	}
	if adaptiveIPC < 0.88*best {
		t.Errorf("adaptive IPC %v more than 12%% below the oracle static %v", adaptiveIPC, best)
	}
}

func TestEquation4Experiment(t *testing.T) {
	tb := Equation4(QuickScale())
	if len(tb.Rows) != 6 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		pred, err1 := strconv.ParseFloat(row[3], 64)
		meas, err2 := strconv.ParseFloat(row[4], 64)
		if err1 != nil || err2 != nil {
			t.Fatal("bad cells")
		}
		if diff := pred - meas; diff > 3 || diff < -3 {
			t.Errorf("window %s: predicted %v vs measured %v", row[0], pred, meas)
		}
	}
	// Demand fetch carries the full ~19-cycle signal; window 32 none.
	first, _ := strconv.ParseFloat(tb.Rows[0][4], 64)
	last, _ := strconv.ParseFloat(tb.Rows[5][4], 64)
	if first < 15 {
		t.Errorf("demand-fetch signal %v, want ≈ 19", first)
	}
	if last > 1.5 || last < -1.5 {
		t.Errorf("covering-window signal %v, want ≈ 0", last)
	}
}

func TestMissQueueSecurityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("attack sweep is slow")
	}
	sc := QuickScale()
	// 2^17 samples separates the three queue sizes decisively; at smaller
	// budgets the pairs-recovered ordering is sampling luck.
	sc.AttackMaxSamples = 1 << 17
	sc.AttackBatch = 1 << 15
	tb := MissQueueSecurity(sc)
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	pairs := make([]int, 3)
	sigmas := make([]float64, 3)
	for i, row := range tb.Rows {
		n, err := strconv.Atoi(strings.TrimSuffix(row[2], "/15"))
		if err != nil {
			t.Fatal(err)
		}
		pairs[i] = n
		s, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		sigmas[i] = s
	}
	// More miss-queue entries blur the signal: progress and timing
	// variance fall with queue size.
	if !(pairs[0] >= pairs[1] && pairs[1] >= pairs[2]) {
		t.Errorf("pairs not monotone in queue size: %v", pairs)
	}
	if !(sigmas[0] >= sigmas[1] && sigmas[1] >= sigmas[2]) {
		t.Errorf("sigma not monotone in queue size: %v", sigmas)
	}
}
