package experiments

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/infotheory"
	"randfill/internal/rng"
	"randfill/internal/sim"
	"randfill/internal/workloads"
)

// AblationWindowShape isolates the window-direction design choice: for the
// security side (P1-P2 on the AES final-round table) the bidirectional
// window is what matters ("randomized table lookups do not favor the
// forward direction", Section V.A); for the streaming performance side the
// forward window wins (Section VII).
func AblationWindowShape(sc Scale) *Table {
	t := &Table{
		Title:   "Ablation: window shape (size 16) — security signal vs streaming speedup",
		Headers: []string{"window", "P1-P2 (AES T4)", "libquantum IPC vs demand"},
	}
	shapes := []struct {
		name string
		w    rng.Window
	}{
		{"forward [0,15]", rng.Window{A: 0, B: 15}},
		{"backward [-15,0]", rng.Window{A: 15, B: 0}},
		{"bidirectional [-8,7]", rng.Window{A: 8, B: 7}},
	}
	bench, _ := workloads.ByName("libquantum")
	trace := bench.Gen(sc.SpecAccesses, sc.Seed)
	base := sim.New(sim.Config{Seed: sc.Seed}).RunTraceSteady(sim.ThreadConfig{}, trace)

	for _, sh := range shapes {
		mc := infotheory.MonteCarloP1P2(infotheory.P1P2Config{
			NewCache: sa32kFactory(),
			Window:   sh.w,
			Trials:   sc.MonteCarloTrials / 2,
			Region:   t4Region(),
			Seed:     sc.Seed,
		})
		res := sim.New(sim.Config{Seed: sc.Seed}).RunTraceSteady(sim.ThreadConfig{
			Mode: sim.ModeRandomFill, Window: sh.w,
		}, trace)
		t.AddRow(sh.name, fmt.Sprintf("%.3f", mc.Diff()), pct(res.IPC()/base.IPC()))
	}
	t.AddNote("the bidirectional shape gives the best security at equal size (the paper's choice for crypto); only the forward shape buys the streaming speedup")
	return t
}

// AblationFillQueue isolates the random fill queue depth. With the FIFO
// miss-queue arbitration this design uses, the queue drains promptly and
// depth barely matters; under a strict demand-priority arbitration (not
// modelled here) a shallow queue starves fills entirely — see DESIGN.md's
// discussion of the 1-entry security configuration.
func AblationFillQueue(sc Scale) *Table {
	t := &Table{
		Title:   "Ablation: random fill queue depth (AES-CBC, window [-16,+15], 2-entry miss queue)",
		Headers: []string{"queue depth", "random fills landed", "IPC vs demand"},
	}
	trace := aesCBCTrace(sc)
	base := sim.New(sim.Config{Seed: sc.Seed}).RunTrace(sim.ThreadConfig{}, trace)
	for _, depth := range []int{1, 4, 16, 64} {
		cfg := sim.DefaultConfig()
		cfg.Seed = sc.Seed
		cfg.MissQueue = 2
		cfg.FillQueueCap = depth
		res := sim.New(cfg).RunTrace(sim.ThreadConfig{
			Mode: sim.ModeRandomFill, Window: rng.Window{A: 16, B: 15},
		}, trace)
		t.AddRow(fmt.Sprintf("%d", depth),
			fmt.Sprintf("%d", res.RandomFills),
			pct(res.IPC()/base.IPC()))
	}
	t.AddNote("fills converge to steady-state table residency regardless of depth under FIFO arbitration; landed-fill counts plateau once the tables are resident")
	return t
}

// AblationMissQueue isolates the miss queue (MSHR) size, the knob the paper
// turns between its performance configuration (4 entries) and its
// attacker-favoring security configuration (1 entry).
func AblationMissQueue(sc Scale) *Table {
	t := &Table{
		Title:   "Ablation: miss queue entries (AES-CBC, demand fetch)",
		Headers: []string{"entries", "IPC", "vs 4 entries"},
	}
	trace := aesCBCTrace(sc)
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		cfg := sim.DefaultConfig()
		cfg.Seed = sc.Seed
		cfg.MissQueue = n
		res := sim.New(cfg).RunTrace(sim.ThreadConfig{}, trace)
		if n == 4 {
			base = res.IPC()
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.3f", res.IPC()), "")
	}
	for i, n := range []int{1, 2, 4, 8} {
		cfg := sim.DefaultConfig()
		cfg.Seed = sc.Seed
		cfg.MissQueue = n
		res := sim.New(cfg).RunTrace(sim.ThreadConfig{}, trace)
		t.Rows[i][2] = pct(res.IPC() / base)
	}
	t.AddNote("fewer entries serialize misses, which is why the paper's 1-entry security configuration makes timing attacks an order of magnitude cheaper")
	return t
}

// AblationDropOnHit isolates the tag-check drop of redundant random fill
// requests (Section IV.B.2): without it, fills that would hit are issued
// anyway, wasting L2 bandwidth for no security change.
func AblationDropOnHit(sc Scale) *Table {
	t := &Table{
		Title:   "Ablation: drop-if-present tag check (AES-CBC, window [-16,+15])",
		Headers: []string{"variant", "IPC vs demand", "L2 accesses vs demand"},
	}
	trace := aesCBCTrace(sc)
	mBase := sim.New(sim.Config{Seed: sc.Seed})
	base := mBase.RunTrace(sim.ThreadConfig{}, trace)

	for _, keep := range []bool{false, true} {
		m := sim.New(sim.Config{Seed: sc.Seed})
		res := m.RunTrace(sim.ThreadConfig{
			Mode:               sim.ModeRandomFill,
			Window:             rng.Window{A: 16, B: 15},
			KeepRedundantFills: keep,
		}, trace)
		name := "with drop (hardware design)"
		if keep {
			name = "without drop (ablated)"
		}
		t.AddRow(name, pct(res.IPC()/base.IPC()),
			pct(float64(m.L2Accesses())/float64(mBase.L2Accesses())))
	}
	return t
}

// AblationL2RandomFill reproduces the Section VI observation: applying the
// random fill policy at the L2 as well has negligible performance impact,
// because the large L2 tolerates the extra pollution.
func AblationL2RandomFill(sc Scale) *Table {
	t := &Table{
		Title:   "Ablation: random fill at L1 only vs L1+L2 (AES-CBC, window [-16,+15])",
		Headers: []string{"variant", "IPC vs demand"},
	}
	trace := aesCBCTrace(sc)
	base := sim.New(sim.Config{Seed: sc.Seed}).RunTrace(sim.ThreadConfig{}, trace)
	w := rng.Window{A: 16, B: 15}

	l1only := sim.New(sim.Config{Seed: sc.Seed}).RunTrace(sim.ThreadConfig{
		Mode: sim.ModeRandomFill, Window: w,
	}, trace)
	both := sim.New(sim.Config{Seed: sc.Seed, L2Window: w}).RunTrace(sim.ThreadConfig{
		Mode: sim.ModeRandomFill, Window: w,
	}, trace)

	t.AddRow("L1 random fill", pct(l1only.IPC()/base.IPC()))
	t.AddRow("L1+L2 random fill", pct(both.IPC()/base.IPC()))
	t.AddNote("paper Section VI: \"the performance impact is negligible since the L2 cache is large and can better tolerate the potential cache pollution\"")
	return t
}

// sa32kFactory returns the standard Table III cache factory.
func sa32kFactory() func(src *rng.Source) cache.Cache {
	return func(src *rng.Source) cache.Cache {
		return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
	}
}
