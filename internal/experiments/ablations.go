package experiments

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/infotheory"
	"randfill/internal/parexp"
	"randfill/internal/rng"
	"randfill/internal/sim"
	"randfill/internal/workloads"
)

// AblationWindowShape isolates the window-direction design choice: for the
// security side (P1-P2 on the AES final-round table) the bidirectional
// window is what matters ("randomized table lookups do not favor the
// forward direction", Section V.A); for the streaming performance side the
// forward window wins (Section VII).
func AblationWindowShape(sc Scale) *Table {
	t := &Table{
		Title:   "Ablation: window shape (size 16) — security signal vs streaming speedup",
		Headers: []string{"window", "P1-P2 (AES T4)", "libquantum IPC vs demand"},
	}
	shapes := []struct {
		name string
		w    rng.Window
	}{
		{"forward [0,15]", rng.Window{A: 0, B: 15}},
		{"backward [-15,0]", rng.Window{A: 15, B: 0}},
		{"bidirectional [-8,7]", rng.Window{A: 8, B: 7}},
	}
	bench, _ := workloads.ByName("libquantum")
	trace := bench.Gen(sc.SpecAccesses, sc.Seed)
	base := sim.New(sim.Config{Seed: sc.Seed}).RunTraceSteady(sim.ThreadConfig{}, trace)

	type shapeResult struct {
		diff float64
		ipc  float64
	}
	results := parexp.Map(sc.engine(), len(shapes), func(i int) shapeResult {
		mc := infotheory.MonteCarloP1P2(infotheory.P1P2Config{
			NewCache: sa32kFactory(),
			Window:   shapes[i].w,
			Trials:   sc.MonteCarloTrials / 2,
			Region:   t4Region(),
			Seed:     sc.Seed,
		})
		res := sim.New(sim.Config{Seed: sc.Seed}).RunTraceSteady(sim.ThreadConfig{
			Mode: sim.ModeRandomFill, Window: shapes[i].w,
		}, trace)
		return shapeResult{mc.Diff(), res.IPC()}
	})
	for i, r := range results {
		t.AddRow(shapes[i].name, fmt.Sprintf("%.3f", r.diff), pct(r.ipc/base.IPC()))
	}
	t.AddNote("the bidirectional shape gives the best security at equal size (the paper's choice for crypto); only the forward shape buys the streaming speedup")
	return t
}

// AblationFillQueue isolates the random fill queue depth. With the FIFO
// miss-queue arbitration this design uses, the queue drains promptly and
// depth barely matters; under a strict demand-priority arbitration (not
// modelled here) a shallow queue starves fills entirely — see DESIGN.md's
// discussion of the 1-entry security configuration.
func AblationFillQueue(sc Scale) *Table {
	t := &Table{
		Title:   "Ablation: random fill queue depth (AES-CBC, window [-16,+15], 2-entry miss queue)",
		Headers: []string{"queue depth", "random fills landed", "IPC vs demand"},
	}
	trace := aesCBCTrace(sc)
	base := sim.New(sim.Config{Seed: sc.Seed}).RunTrace(sim.ThreadConfig{}, trace)
	depths := []int{1, 4, 16, 64}
	results := parexp.Map(sc.engine(), len(depths), func(i int) sim.Result {
		cfg := sim.DefaultConfig()
		cfg.Seed = sc.Seed
		cfg.MissQueue = 2
		cfg.FillQueueCap = depths[i]
		return sim.New(cfg).RunTrace(sim.ThreadConfig{
			Mode: sim.ModeRandomFill, Window: rng.Window{A: 16, B: 15},
		}, trace)
	})
	for i, res := range results {
		t.AddRow(fmt.Sprintf("%d", depths[i]),
			fmt.Sprintf("%d", res.RandomFills),
			pct(res.IPC()/base.IPC()))
	}
	t.AddNote("fills converge to steady-state table residency regardless of depth under FIFO arbitration; landed-fill counts plateau once the tables are resident")
	return t
}

// AblationMissQueue isolates the miss queue (MSHR) size, the knob the paper
// turns between its performance configuration (4 entries) and its
// attacker-favoring security configuration (1 entry).
func AblationMissQueue(sc Scale) *Table {
	t := &Table{
		Title:   "Ablation: miss queue entries (AES-CBC, demand fetch)",
		Headers: []string{"entries", "IPC", "vs 4 entries"},
	}
	trace := aesCBCTrace(sc)
	sizes := []int{1, 2, 4, 8}
	// Each size is simulated once; the "vs 4 entries" column is computed
	// from the collected IPCs rather than re-running every configuration.
	ipcs := parexp.Map(sc.engine(), len(sizes), func(i int) float64 {
		cfg := sim.DefaultConfig()
		cfg.Seed = sc.Seed
		cfg.MissQueue = sizes[i]
		return sim.New(cfg).RunTrace(sim.ThreadConfig{}, trace).IPC()
	})
	var base float64
	for i, n := range sizes {
		if n == 4 {
			base = ipcs[i]
		}
	}
	for i, n := range sizes {
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.3f", ipcs[i]), pct(ipcs[i]/base))
	}
	t.AddNote("fewer entries serialize misses, which is why the paper's 1-entry security configuration makes timing attacks an order of magnitude cheaper")
	return t
}

// AblationDropOnHit isolates the tag-check drop of redundant random fill
// requests (Section IV.B.2): without it, fills that would hit are issued
// anyway, wasting L2 bandwidth for no security change.
func AblationDropOnHit(sc Scale) *Table {
	t := &Table{
		Title:   "Ablation: drop-if-present tag check (AES-CBC, window [-16,+15])",
		Headers: []string{"variant", "IPC vs demand", "L2 accesses vs demand"},
	}
	trace := aesCBCTrace(sc)
	mBase := sim.New(sim.Config{Seed: sc.Seed})
	base := mBase.RunTrace(sim.ThreadConfig{}, trace)

	keeps := []bool{false, true}
	type dropResult struct {
		ipc float64
		l2  uint64
	}
	results := parexp.Map(sc.engine(), len(keeps), func(i int) dropResult {
		m := sim.New(sim.Config{Seed: sc.Seed})
		res := m.RunTrace(sim.ThreadConfig{
			Mode:               sim.ModeRandomFill,
			Window:             rng.Window{A: 16, B: 15},
			KeepRedundantFills: keeps[i],
		}, trace)
		return dropResult{res.IPC(), m.L2Accesses()}
	})
	for i, r := range results {
		name := "with drop (hardware design)"
		if keeps[i] {
			name = "without drop (ablated)"
		}
		t.AddRow(name, pct(r.ipc/base.IPC()),
			pct(float64(r.l2)/float64(mBase.L2Accesses())))
	}
	return t
}

// AblationL2RandomFill reproduces the Section VI observation: applying the
// random fill policy at the L2 as well has negligible performance impact,
// because the large L2 tolerates the extra pollution.
func AblationL2RandomFill(sc Scale) *Table {
	t := &Table{
		Title:   "Ablation: random fill at L1 only vs L1+L2 (AES-CBC, window [-16,+15])",
		Headers: []string{"variant", "IPC vs demand"},
	}
	trace := aesCBCTrace(sc)
	base := sim.New(sim.Config{Seed: sc.Seed}).RunTrace(sim.ThreadConfig{}, trace)
	w := rng.Window{A: 16, B: 15}

	variants := []sim.Config{
		{Seed: sc.Seed},
		{Seed: sc.Seed, L2Window: w},
	}
	ipcs := parexp.Map(sc.engine(), len(variants), func(i int) float64 {
		return sim.New(variants[i]).RunTrace(sim.ThreadConfig{
			Mode: sim.ModeRandomFill, Window: w,
		}, trace).IPC()
	})

	t.AddRow("L1 random fill", pct(ipcs[0]/base.IPC()))
	t.AddRow("L1+L2 random fill", pct(ipcs[1]/base.IPC()))
	t.AddNote("paper Section VI: \"the performance impact is negligible since the L2 cache is large and can better tolerate the potential cache pollution\"")
	return t
}

// sa32kFactory returns the standard Table III cache factory.
func sa32kFactory() func(src *rng.Source) cache.Cache {
	return func(src *rng.Source) cache.Cache {
		return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
	}
}
