package experiments

import (
	"context"
	"flag"
	"testing"
)

// mustRun renders one experiment, failing the test on error (no experiment
// errors under a background ctx).
func mustRun(t *testing.T, e Experiment, sc Scale) string {
	t.Helper()
	tbl, err := e.Run(context.Background(), sc)
	if err != nil {
		t.Fatalf("%s: %v", e.Name, err)
	}
	return tbl.String()
}

// extraWorkers adds one more worker count to the invariance matrix, so CI
// (or a curious operator) can probe odd counts without editing the test:
//
//	go test ./internal/experiments -run Invariance -workers 5
var extraWorkers = flag.Int("workers", 0, "extra worker count for the invariance matrix (0 = none)")

// tinyScale is the metamorphic-test budget: every experiment still
// exercises its full code path (sharded searches, Monte Carlo merges, SMT
// co-runs) but at the smallest budgets that keep the suite in CI range.
func tinyScale() Scale {
	return Scale{
		MonteCarloTrials: 2000,
		AttackMaxSamples: 2048,
		AttackBatch:      1024,
		Figure2Samples:   1024,
		CBCBytes:         2048,
		SpecAccesses:     20000,
		Seed:             1,
	}
}

// TestWorkerCountInvariance is the engine's contract, checked end to end:
// for every registered experiment, the rendered table is byte-identical
// across worker counts, and repeating a run at the same seed reproduces the
// same bytes. This is a metamorphic test — no expected outputs are pinned;
// only the relation between runs is asserted.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment four times")
	}
	counts := []int{1, 2, 8}
	if *extraWorkers > 0 {
		counts = append(counts, *extraWorkers)
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			sc := tinyScale()
			sc.Workers = counts[0]
			want := mustRun(t, e, sc)
			for _, w := range counts[1:] {
				sc.Workers = w
				if got := mustRun(t, e, sc); got != want {
					t.Fatalf("workers=%d changed the output\n--- workers=%d ---\n%s--- workers=%d ---\n%s",
						w, counts[0], want, w, got)
				}
			}
			// Same seed, same worker count: a repeated run must reproduce
			// the exact bytes (no hidden global state between runs).
			sc.Workers = counts[len(counts)-1]
			if got := mustRun(t, e, sc); got != want {
				t.Fatalf("repeated run at workers=%d changed the output", sc.Workers)
			}
		})
	}
}

// TestTable3QuickWorkerInvariance pins the headline acceptance check at the
// scale the command actually runs: `-run table3 -scale quick -workers 8`
// must emit the same bytes as `-workers 1`.
func TestTable3QuickWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick-scale Table3 sweeps")
	}
	sc := QuickScale()
	sc.Workers = 1
	serial := Table3(sc).String()
	sc.Workers = 8
	if parallel := Table3(sc).String(); parallel != serial {
		t.Fatalf("quick-scale Table3 differs between workers=1 and workers=8\n--- workers=1 ---\n%s--- workers=8 ---\n%s",
			serial, parallel)
	}
}
