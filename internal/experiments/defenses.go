package experiments

import (
	"fmt"

	"randfill/internal/attacks"
	"randfill/internal/cache"
	"randfill/internal/newcache"
	"randfill/internal/nomo"
	"randfill/internal/parexp"
	"randfill/internal/rng"
	"randfill/internal/rpcache"
)

// defenseRow is one cache configuration of the Section VIII comparison.
type defenseRow struct {
	name   string
	mk     func(src *rng.Source) cache.Cache
	window rng.Window
}

func defenseRows() []defenseRow {
	geom := cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}
	sa := func(src *rng.Source) cache.Cache { return cache.NewSetAssoc(geom, cache.LRU{}) }
	nc := func(src *rng.Source) cache.Cache { return newcache.New(geom.SizeBytes, newcache.DefaultExtraBits, src) }
	rp := func(src *rng.Source) cache.Cache { return rpcache.New(geom, src) }
	nm := func(src *rng.Source) cache.Cache { return nomo.New(geom, 2, 1) }
	w := rng.Symmetric(32)
	return []defenseRow{
		{"SA (demand fetch)", sa, rng.Window{}},
		{"NoMo", nm, rng.Window{}},
		{"RPcache", rp, rng.Window{}},
		{"Newcache", nc, rng.Window{}},
		{"RandomFill+SA", sa, w},
		{"RandomFill+RPcache", rp, w},
		{"RandomFill+Newcache", nc, w},
	}
}

// DefenseMatrix reproduces the Section VIII comparison as a measured
// matrix: each cache architecture (with and without the random fill engine)
// against one contention based attack (Prime-Probe) and one reuse based
// attack (Flush-Reload). The paper's argument is visible in the pattern:
// partitioning/randomization defenses close the contention column but not
// the reuse column; random fill closes the reuse column but not the
// contention column; only the composition closes both.
func DefenseMatrix(sc Scale) *Table {
	t := &Table{
		Title: "Section VIII: defenses vs attack classes (32KB 4-way L1)",
		Headers: []string{"cache", "prime-probe set accuracy",
			"flush-reload accuracy", "flush-reload bits/access"},
	}
	trials := sc.MonteCarloTrials / 4
	if trials < 1000 {
		trials = 1000
	}
	region := t4Region()
	rows := defenseRows()
	type matrixCell struct {
		pp attacks.PrimeProbeResult
		fr attacks.FlushReloadResult
	}
	cells := parexp.Map(sc.engine(), len(rows), func(i int) matrixCell {
		row := rows[i]
		pp := attacks.PrimeProbe(attacks.PrimeProbeConfig{
			NewCache:     row.mk,
			Sets:         128,
			Ways:         4,
			Window:       row.window,
			VictimRegion: region,
			AttackerBase: 0x100000,
			Trials:       min(trials, 500),
			Seed:         sc.Seed,
		})
		fr := attacks.FlushReload(attacks.FlushReloadConfig{
			NewCache: row.mk,
			Window:   row.window,
			Region:   region,
			Trials:   trials,
			Seed:     sc.Seed,
		})
		return matrixCell{pp, fr}
	})
	for i, c := range cells {
		t.AddRow(rows[i].name,
			fmt.Sprintf("%.1f%%", 100*c.pp.ExactAccuracy),
			fmt.Sprintf("%.1f%%", 100*c.fr.Accuracy),
			fmt.Sprintf("%.3f", c.fr.MutualInfo))
	}
	t.AddNote("paper Section VIII: partition/randomization designs stop contention attacks only; random fill stops reuse attacks only; composing them covers all known cache side channel attacks")
	return t
}
