// Package checkpoint is the crash-safe shard store behind resumable
// experiment runs. An experiment that fans its work over a fixed shard plan
// (internal/parexp) writes one checkpoint file per completed shard: the
// shard's identity (experiment, shard index, seed, config hash, RNG stream
// version) plus the serialized mergeable accumulator it produced. A run
// that is killed mid-way can then be resumed: shards whose checkpoints
// verify are loaded, only the missing shards re-execute, and — because the
// shard plan and the merge order are fixed — the final output is
// byte-identical to an uninterrupted run.
//
// Robustness is layered:
//
//   - Writes are atomic (internal/atomicio: temp file + fsync + rename), so
//     a crash during Put leaves either no checkpoint or a complete one.
//   - Every file carries a CRC32-framed body; a torn or bit-flipped file
//     fails verification and reads as "missing", so the shard re-runs
//     instead of corrupting the merge.
//   - The file name and body both bind the full Meta; a checkpoint written
//     by a different configuration (different budgets, seed, shard count,
//     or RNG stream version) is never loaded.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"randfill/internal/atomicio"
)

// magic opens every checkpoint file; the trailing byte is the format
// version.
var magic = [8]byte{'R', 'F', 'C', 'K', 'P', 'T', '0', '1'}

// Meta identifies one shard's checkpoint. All fields participate in
// verification: a stored checkpoint is only returned for a Meta that
// matches it exactly.
type Meta struct {
	// Experiment names the producing experiment, optionally with a stage
	// suffix (e.g. "Table3/cells").
	Experiment string
	// Shard is the shard index within the experiment's fixed shard plan.
	Shard int
	// Seed is the shard's derived RNG seed (informational binding: two
	// configs that agree on everything but seeding hash differently too).
	Seed uint64
	// ConfigHash fingerprints every input that determines the shard's
	// result (budgets, root seed, shard count, ...). See Hash.
	ConfigHash uint64
	// StreamVersion is rng.StreamVersion at write time; shards drawn from
	// an incompatible byte stream must not be merged.
	StreamVersion int
}

// Hooks intercepts store writes so the fault-injection harness
// (internal/faultinject) can fail, corrupt, delay, or kill at precisely
// chosen points. Production runs leave it nil.
type Hooks interface {
	// BeforePut may veto the write by returning an error.
	BeforePut(m Meta) error
	// AfterPut runs once the file is durably published at path; it may
	// damage the file or terminate the process to simulate a crash.
	AfterPut(m Meta, path string)
}

// Store is a directory of per-shard checkpoint files.
type Store struct {
	dir string
	// Hooks, when non-nil, observes every Put. Used only by fault
	// injection; see Hooks.
	Hooks Hooks
}

// Open returns a Store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// FileBase is the shard's canonical file-name stem, without directory or
// extension. The config hash is part of the name, so checkpoints from a
// different configuration of the same experiment coexist without ever being
// confused for each other. The fabric layer reuses the same stem for a
// unit's lease and aborted-marker files, so every per-unit artifact of one
// run sorts and greps together.
func (m Meta) FileBase() string {
	return fmt.Sprintf("%s-s%03d-%016x", sanitize(m.Experiment), m.Shard, m.ConfigHash)
}

// Path returns the absolute path shard m's checkpoint file occupies (whether
// or not it exists yet).
func (s *Store) Path(m Meta) string {
	return filepath.Join(s.dir, m.FileBase()+".ckpt")
}

// path derives the shard's file name; see Meta.FileBase.
func (s *Store) path(m Meta) string { return s.Path(m) }

// sanitize maps an experiment/stage name to a safe file-name fragment.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// Put durably records payload as shard m's completed result, atomically
// replacing any previous checkpoint for the same identity.
func (s *Store) Put(m Meta, payload []byte) error {
	if s.Hooks != nil {
		if err := s.Hooks.BeforePut(m); err != nil {
			return fmt.Errorf("checkpoint: put %s shard %d: %w", m.Experiment, m.Shard, err)
		}
	}
	path := s.path(m)
	if err := atomicio.WriteFile(path, encode(m, payload), 0o644); err != nil {
		return fmt.Errorf("checkpoint: put %s shard %d: %w", m.Experiment, m.Shard, err)
	}
	if s.Hooks != nil {
		s.Hooks.AfterPut(m, path)
	}
	return nil
}

// Get loads shard m's checkpoint. ok is false when no checkpoint exists,
// when the file fails CRC or framing verification (torn/corrupt write), or
// when the stored identity does not match m — in every such case the
// caller simply re-runs the shard. The error return is reserved for real
// I/O failures (e.g. permission errors), which should stop the run.
func (s *Store) Get(m Meta) (payload []byte, ok bool, err error) {
	data, err := os.ReadFile(s.path(m))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: get %s shard %d: %w", m.Experiment, m.Shard, err)
	}
	got, payload, derr := decode(data)
	if derr != nil || got != m {
		// Corrupt, torn, or foreign: treat as missing so the shard re-runs.
		return nil, false, nil
	}
	return payload, true, nil
}

// encode frames the checkpoint file:
//
//	magic[8] | bodyLen uint32 LE | crc32(IEEE, body) uint32 LE | body
//
// body: uvarint len + Experiment | uvarint Shard | Seed uint64 LE |
// ConfigHash uint64 LE | uvarint StreamVersion | payload (to end).
func encode(m Meta, payload []byte) []byte {
	var body bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { body.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	putUvarint(uint64(len(m.Experiment)))
	body.WriteString(m.Experiment)
	putUvarint(uint64(m.Shard))
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], m.Seed)
	body.Write(u64[:])
	binary.LittleEndian.PutUint64(u64[:], m.ConfigHash)
	body.Write(u64[:])
	putUvarint(uint64(m.StreamVersion))
	body.Write(payload)

	out := make([]byte, 0, 16+body.Len())
	out = append(out, magic[:]...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(body.Len()))
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(body.Bytes()))
	out = append(out, u32[:]...)
	return append(out, body.Bytes()...)
}

// errCorrupt is the generic verification failure; Get converts it to
// "missing" so the shard re-runs.
var errCorrupt = errors.New("checkpoint: corrupt file")

// decode verifies the frame and returns the stored identity and payload.
func decode(data []byte) (Meta, []byte, error) {
	var m Meta
	if len(data) < 16 || !bytes.Equal(data[:8], magic[:]) {
		return m, nil, errCorrupt
	}
	bodyLen := binary.LittleEndian.Uint32(data[8:12])
	sum := binary.LittleEndian.Uint32(data[12:16])
	body := data[16:]
	if uint32(len(body)) != bodyLen || crc32.ChecksumIEEE(body) != sum {
		return m, nil, errCorrupt
	}
	r := bytes.NewReader(body)
	nameLen, err := binary.ReadUvarint(r)
	if err != nil || nameLen > uint64(r.Len()) {
		return m, nil, errCorrupt
	}
	name := make([]byte, nameLen)
	if _, err := r.Read(name); err != nil {
		return m, nil, errCorrupt
	}
	m.Experiment = string(name)
	shard, err := binary.ReadUvarint(r)
	if err != nil {
		return m, nil, errCorrupt
	}
	m.Shard = int(shard)
	var u64 [8]byte
	if _, err := r.Read(u64[:]); err != nil || r.Len() < 8 {
		return m, nil, errCorrupt
	}
	m.Seed = binary.LittleEndian.Uint64(u64[:])
	if _, err := r.Read(u64[:]); err != nil {
		return m, nil, errCorrupt
	}
	m.ConfigHash = binary.LittleEndian.Uint64(u64[:])
	sv, err := binary.ReadUvarint(r)
	if err != nil {
		return m, nil, errCorrupt
	}
	m.StreamVersion = int(sv)
	payload := make([]byte, r.Len())
	if _, err := r.Read(payload); err != nil && r.Len() > 0 {
		return m, nil, errCorrupt
	}
	return m, payload, nil
}

// ScanState classifies one file Scan found in the store directory.
type ScanState int

const (
	// ScanComplete: the file's frame and CRC verify; Meta is trustworthy.
	ScanComplete ScanState = iota
	// ScanTorn: the file fails magic/framing/CRC verification — a torn or
	// corrupted write. Get would report it as missing; the coordinator
	// schedules the unit as incomplete.
	ScanTorn
)

func (s ScanState) String() string {
	if s == ScanComplete {
		return "complete"
	}
	return "torn"
}

// ScanEntry is one checkpoint file Scan found.
type ScanEntry struct {
	// Path is the file's full path.
	Path string
	// Meta is the stored identity; zero when State is ScanTorn.
	Meta Meta
	// State reports whether the file verifies.
	State ScanState
}

// Foreign reports whether a complete entry belongs to a different
// configuration than want — same directory, but a different experiment,
// config hash, seed, or RNG stream version. Foreign entries are never
// loaded for want's run; they are surfaced so a coordinator can tell
// "done", "torn", and "someone else's" apart when it inventories a shared
// directory.
func (e ScanEntry) Foreign(want Meta) bool {
	if e.State != ScanComplete {
		return false
	}
	return e.Meta.Experiment != want.Experiment ||
		e.Meta.ConfigHash != want.ConfigHash ||
		e.Meta.StreamVersion != want.StreamVersion
}

// Scan inventories every checkpoint file in the store directory, in sorted
// file-name order: complete entries carry their verified Meta, torn ones are
// reported as ScanTorn. It is the one shared answer to "which units does
// this directory actually hold" — the coordinator's dispatch loop, the
// crash-resume suite, and the join merge all consume it instead of globbing
// the directory by hand.
func (s *Store) Scan() ([]ScanEntry, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.ckpt"))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: scan %s: %w", s.dir, err)
	}
	sort.Strings(names)
	entries := make([]ScanEntry, 0, len(names))
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // raced a concurrent cleanup; the file is simply gone
			}
			return nil, fmt.Errorf("checkpoint: scan %s: %w", s.dir, err)
		}
		m, _, derr := decode(data)
		if derr != nil {
			entries = append(entries, ScanEntry{Path: name, State: ScanTorn})
			continue
		}
		entries = append(entries, ScanEntry{Path: name, Meta: m, State: ScanComplete})
	}
	return entries, nil
}

// Complete reports, for each wanted Meta, whether the store holds a
// verifying checkpoint for exactly that identity. It is Scan folded against
// a unit plan — what a coordinator asks before dispatching work.
func (s *Store) Complete(metas []Meta) ([]bool, error) {
	entries, err := s.Scan()
	if err != nil {
		return nil, err
	}
	have := make(map[Meta]bool, len(entries))
	for _, e := range entries {
		if e.State == ScanComplete {
			have[e.Meta] = true
		}
	}
	out := make([]bool, len(metas))
	for i, m := range metas {
		out[i] = have[m]
	}
	return out, nil
}

// Verify checks a raw checkpoint frame (a whole file's bytes) and returns
// the identity it binds. ok is false for torn or corrupt frames.
func Verify(data []byte) (m Meta, ok bool) {
	m, _, err := decode(data)
	return m, err == nil
}

// AdoptResult says what AdoptFrame did with a frame.
type AdoptResult int

const (
	// Adopted: the frame verified and was written under its canonical name.
	Adopted AdoptResult = iota
	// AlreadyPresent: the store already held byte-identical content for the
	// frame's identity; nothing was written.
	AlreadyPresent
	// RejectedTorn: the frame fails verification and was discarded.
	RejectedTorn
)

// AdoptFrame merges one raw checkpoint frame (read from another run's
// directory) into the store under its canonical name. Torn frames are
// rejected. If the store already holds a checkpoint for the same identity,
// the bytes must match exactly: work units are pure functions of their
// Meta, so two honest runs can only ever produce identical frames — a
// mismatch means one side is corrupt in a CRC-colliding way or the purity
// contract is broken, and the merge must stop rather than guess.
func (s *Store) AdoptFrame(data []byte) (Meta, AdoptResult, error) {
	m, ok := Verify(data)
	if !ok {
		return Meta{}, RejectedTorn, nil
	}
	existing, err := os.ReadFile(s.path(m))
	if err == nil {
		if _, eok := Verify(existing); eok {
			if bytes.Equal(existing, data) {
				return m, AlreadyPresent, nil
			}
			return m, RejectedTorn, fmt.Errorf(
				"checkpoint: adopt %s shard %d: store already holds different bytes for the same identity (purity violation or undetected corruption)",
				m.Experiment, m.Shard)
		}
		// Existing file is torn: the incoming verified frame replaces it.
	} else if !errors.Is(err, os.ErrNotExist) {
		return m, RejectedTorn, fmt.Errorf("checkpoint: adopt: %w", err)
	}
	if err := atomicio.WriteFile(s.path(m), data, 0o644); err != nil {
		return m, RejectedTorn, fmt.Errorf("checkpoint: adopt %s shard %d: %w", m.Experiment, m.Shard, err)
	}
	return m, Adopted, nil
}

// Hash fingerprints a configuration as FNV-1a over its canonical string
// parts. Callers list every input that determines a shard's bytes — budget
// knobs, root seed, shard count — so that a checkpoint can never be resumed
// into a run it was not computed for.
func Hash(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p)) // hash.Hash.Write is documented never to fail
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}
