// Package checkpoint is the crash-safe shard store behind resumable
// experiment runs. An experiment that fans its work over a fixed shard plan
// (internal/parexp) writes one checkpoint file per completed shard: the
// shard's identity (experiment, shard index, seed, config hash, RNG stream
// version) plus the serialized mergeable accumulator it produced. A run
// that is killed mid-way can then be resumed: shards whose checkpoints
// verify are loaded, only the missing shards re-execute, and — because the
// shard plan and the merge order are fixed — the final output is
// byte-identical to an uninterrupted run.
//
// Robustness is layered:
//
//   - Writes are atomic (internal/atomicio: temp file + fsync + rename), so
//     a crash during Put leaves either no checkpoint or a complete one.
//   - Every file carries a CRC32-framed body; a torn or bit-flipped file
//     fails verification and reads as "missing", so the shard re-runs
//     instead of corrupting the merge.
//   - The file name and body both bind the full Meta; a checkpoint written
//     by a different configuration (different budgets, seed, shard count,
//     or RNG stream version) is never loaded.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"randfill/internal/atomicio"
)

// magic opens every checkpoint file; the trailing byte is the format
// version.
var magic = [8]byte{'R', 'F', 'C', 'K', 'P', 'T', '0', '1'}

// Meta identifies one shard's checkpoint. All fields participate in
// verification: a stored checkpoint is only returned for a Meta that
// matches it exactly.
type Meta struct {
	// Experiment names the producing experiment, optionally with a stage
	// suffix (e.g. "Table3/cells").
	Experiment string
	// Shard is the shard index within the experiment's fixed shard plan.
	Shard int
	// Seed is the shard's derived RNG seed (informational binding: two
	// configs that agree on everything but seeding hash differently too).
	Seed uint64
	// ConfigHash fingerprints every input that determines the shard's
	// result (budgets, root seed, shard count, ...). See Hash.
	ConfigHash uint64
	// StreamVersion is rng.StreamVersion at write time; shards drawn from
	// an incompatible byte stream must not be merged.
	StreamVersion int
}

// Hooks intercepts store writes so the fault-injection harness
// (internal/faultinject) can fail, corrupt, delay, or kill at precisely
// chosen points. Production runs leave it nil.
type Hooks interface {
	// BeforePut may veto the write by returning an error.
	BeforePut(m Meta) error
	// AfterPut runs once the file is durably published at path; it may
	// damage the file or terminate the process to simulate a crash.
	AfterPut(m Meta, path string)
}

// Store is a directory of per-shard checkpoint files.
type Store struct {
	dir string
	// Hooks, when non-nil, observes every Put. Used only by fault
	// injection; see Hooks.
	Hooks Hooks
}

// Open returns a Store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// path derives the shard's file name. The config hash is part of the name,
// so checkpoints from a different configuration of the same experiment
// coexist without ever being confused for each other.
func (s *Store) path(m Meta) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-s%03d-%016x.ckpt",
		sanitize(m.Experiment), m.Shard, m.ConfigHash))
}

// sanitize maps an experiment/stage name to a safe file-name fragment.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// Put durably records payload as shard m's completed result, atomically
// replacing any previous checkpoint for the same identity.
func (s *Store) Put(m Meta, payload []byte) error {
	if s.Hooks != nil {
		if err := s.Hooks.BeforePut(m); err != nil {
			return fmt.Errorf("checkpoint: put %s shard %d: %w", m.Experiment, m.Shard, err)
		}
	}
	path := s.path(m)
	if err := atomicio.WriteFile(path, encode(m, payload), 0o644); err != nil {
		return fmt.Errorf("checkpoint: put %s shard %d: %w", m.Experiment, m.Shard, err)
	}
	if s.Hooks != nil {
		s.Hooks.AfterPut(m, path)
	}
	return nil
}

// Get loads shard m's checkpoint. ok is false when no checkpoint exists,
// when the file fails CRC or framing verification (torn/corrupt write), or
// when the stored identity does not match m — in every such case the
// caller simply re-runs the shard. The error return is reserved for real
// I/O failures (e.g. permission errors), which should stop the run.
func (s *Store) Get(m Meta) (payload []byte, ok bool, err error) {
	data, err := os.ReadFile(s.path(m))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: get %s shard %d: %w", m.Experiment, m.Shard, err)
	}
	got, payload, derr := decode(data)
	if derr != nil || got != m {
		// Corrupt, torn, or foreign: treat as missing so the shard re-runs.
		return nil, false, nil
	}
	return payload, true, nil
}

// encode frames the checkpoint file:
//
//	magic[8] | bodyLen uint32 LE | crc32(IEEE, body) uint32 LE | body
//
// body: uvarint len + Experiment | uvarint Shard | Seed uint64 LE |
// ConfigHash uint64 LE | uvarint StreamVersion | payload (to end).
func encode(m Meta, payload []byte) []byte {
	var body bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { body.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	putUvarint(uint64(len(m.Experiment)))
	body.WriteString(m.Experiment)
	putUvarint(uint64(m.Shard))
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], m.Seed)
	body.Write(u64[:])
	binary.LittleEndian.PutUint64(u64[:], m.ConfigHash)
	body.Write(u64[:])
	putUvarint(uint64(m.StreamVersion))
	body.Write(payload)

	out := make([]byte, 0, 16+body.Len())
	out = append(out, magic[:]...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(body.Len()))
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(body.Bytes()))
	out = append(out, u32[:]...)
	return append(out, body.Bytes()...)
}

// errCorrupt is the generic verification failure; Get converts it to
// "missing" so the shard re-runs.
var errCorrupt = errors.New("checkpoint: corrupt file")

// decode verifies the frame and returns the stored identity and payload.
func decode(data []byte) (Meta, []byte, error) {
	var m Meta
	if len(data) < 16 || !bytes.Equal(data[:8], magic[:]) {
		return m, nil, errCorrupt
	}
	bodyLen := binary.LittleEndian.Uint32(data[8:12])
	sum := binary.LittleEndian.Uint32(data[12:16])
	body := data[16:]
	if uint32(len(body)) != bodyLen || crc32.ChecksumIEEE(body) != sum {
		return m, nil, errCorrupt
	}
	r := bytes.NewReader(body)
	nameLen, err := binary.ReadUvarint(r)
	if err != nil || nameLen > uint64(r.Len()) {
		return m, nil, errCorrupt
	}
	name := make([]byte, nameLen)
	if _, err := r.Read(name); err != nil {
		return m, nil, errCorrupt
	}
	m.Experiment = string(name)
	shard, err := binary.ReadUvarint(r)
	if err != nil {
		return m, nil, errCorrupt
	}
	m.Shard = int(shard)
	var u64 [8]byte
	if _, err := r.Read(u64[:]); err != nil || r.Len() < 8 {
		return m, nil, errCorrupt
	}
	m.Seed = binary.LittleEndian.Uint64(u64[:])
	if _, err := r.Read(u64[:]); err != nil {
		return m, nil, errCorrupt
	}
	m.ConfigHash = binary.LittleEndian.Uint64(u64[:])
	sv, err := binary.ReadUvarint(r)
	if err != nil {
		return m, nil, errCorrupt
	}
	m.StreamVersion = int(sv)
	payload := make([]byte, r.Len())
	if _, err := r.Read(payload); err != nil && r.Len() > 0 {
		return m, nil, errCorrupt
	}
	return m, payload, nil
}

// Hash fingerprints a configuration as FNV-1a over its canonical string
// parts. Callers list every input that determines a shard's bytes — budget
// knobs, root seed, shard count — so that a checkpoint can never be resumed
// into a run it was not computed for.
func Hash(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p)) // hash.Hash.Write is documented never to fail
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}
