package checkpoint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"randfill/internal/checkpoint"
	"randfill/internal/rng"
)

func testMeta() checkpoint.Meta {
	return checkpoint.Meta{
		Experiment:    "Figure2/collect",
		Shard:         3,
		Seed:          0xdeadbeef,
		ConfigHash:    checkpoint.Hash("quick", "seed=1"),
		StreamVersion: rng.StreamVersion,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testMeta()
	payload := []byte{1, 2, 3, 0xff, 0}
	if err := st.Put(m, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(m)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %v, want %v", got, payload)
	}
}

func TestGetMissing(t *testing.T) {
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(testMeta()); ok || err != nil {
		t.Fatalf("missing shard: ok=%v err=%v", ok, err)
	}
}

func TestEmptyPayload(t *testing.T) {
	st, _ := checkpoint.Open(t.TempDir())
	m := testMeta()
	if err := st.Put(m, nil); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(m)
	if err != nil || !ok || len(got) != 0 {
		t.Fatalf("empty payload: got %v ok=%v err=%v", got, ok, err)
	}
}

// shardFile locates the single checkpoint file in the store's directory.
func shardFile(t *testing.T, st *checkpoint.Store) string {
	t.Helper()
	ents, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("want exactly 1 checkpoint file, have %d", len(ents))
	}
	return filepath.Join(st.Dir(), ents[0].Name())
}

func TestTornFileReadsAsMissing(t *testing.T) {
	st, _ := checkpoint.Open(t.TempDir())
	m := testMeta()
	if err := st.Put(m, []byte("accumulator state")); err != nil {
		t.Fatal(err)
	}
	path := shardFile(t, st)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: the file stops half-way through the body.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(m); ok || err != nil {
		t.Fatalf("torn file: ok=%v err=%v, want missing", ok, err)
	}
}

func TestBitFlipReadsAsMissing(t *testing.T) {
	st, _ := checkpoint.Open(t.TempDir())
	m := testMeta()
	if err := st.Put(m, []byte("accumulator state")); err != nil {
		t.Fatal(err)
	}
	path := shardFile(t, st)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit past the header.
	data[len(data)-3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(m); ok || err != nil {
		t.Fatalf("bit-flipped file: ok=%v err=%v, want missing", ok, err)
	}
}

func TestMetaMismatchReadsAsMissing(t *testing.T) {
	st, _ := checkpoint.Open(t.TempDir())
	m := testMeta()
	if err := st.Put(m, []byte("x")); err != nil {
		t.Fatal(err)
	}
	cases := []func(*checkpoint.Meta){
		func(m *checkpoint.Meta) { m.Seed++ },
		func(m *checkpoint.Meta) { m.StreamVersion++ },
	}
	for i, mutate := range cases {
		q := m
		mutate(&q)
		if _, ok, _ := st.Get(q); ok {
			t.Errorf("case %d: mismatched meta loaded a checkpoint", i)
		}
	}
	// A different config hash or shard resolves to a different file name, so
	// it is missing by construction.
	q := m
	q.ConfigHash++
	if _, ok, _ := st.Get(q); ok {
		t.Error("different config hash loaded a checkpoint")
	}
}

func TestPutOverwrites(t *testing.T) {
	st, _ := checkpoint.Open(t.TempDir())
	m := testMeta()
	if err := st.Put(m, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(m, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(m)
	if err != nil || !ok || string(got) != "second" {
		t.Fatalf("got %q ok=%v err=%v", got, ok, err)
	}
}

func TestShardsAndExperimentsAreDistinctFiles(t *testing.T) {
	st, _ := checkpoint.Open(t.TempDir())
	a := testMeta()
	b := a
	b.Shard = 4
	c := a
	c.Experiment = "Table3/cells"
	for i, m := range []checkpoint.Meta{a, b, c} {
		if err := st.Put(m, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range []checkpoint.Meta{a, b, c} {
		got, ok, err := st.Get(m)
		if err != nil || !ok || len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("meta %d: got %v ok=%v err=%v", i, got, ok, err)
		}
	}
}

func TestHashIsOrderAndBoundarySensitive(t *testing.T) {
	if checkpoint.Hash("a", "b") == checkpoint.Hash("b", "a") {
		t.Error("hash ignores order")
	}
	if checkpoint.Hash("ab", "c") == checkpoint.Hash("a", "bc") {
		t.Error("hash ignores part boundaries")
	}
	if checkpoint.Hash("a") != checkpoint.Hash("a") {
		t.Error("hash not deterministic")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := checkpoint.Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

// TestScanInventoriesCompleteAndTorn: Scan classifies every *.ckpt file in
// the directory — verified frames carry their Meta, torn frames are
// reported (not hidden) so a coordinator can count lost work.
func TestScanInventoriesCompleteAndTorn(t *testing.T) {
	dir := t.TempDir()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := testMeta()
	m2 := testMeta()
	m2.Shard = 5
	if err := st.Put(m1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(m2, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	// Tear the second file and drop an unrelated non-ckpt file.
	if err := os.Truncate(st.Path(m2), 7); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	entries, err := st.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("Scan found %d entries, want 2", len(entries))
	}
	var complete, torn int
	for _, e := range entries {
		switch e.State {
		case checkpoint.ScanComplete:
			complete++
			if e.Meta != m1 {
				t.Errorf("complete entry meta %+v, want %+v", e.Meta, m1)
			}
		case checkpoint.ScanTorn:
			torn++
			if e.Path != st.Path(m2) {
				t.Errorf("torn entry path %s, want %s", e.Path, st.Path(m2))
			}
		}
	}
	if complete != 1 || torn != 1 {
		t.Fatalf("complete=%d torn=%d, want 1/1", complete, torn)
	}
}

// TestScanForeign: an entry recorded under a different config hash verifies
// (it is a real checkpoint) but is foreign to this run's identity.
func TestScanForeign(t *testing.T) {
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mine := testMeta()
	other := mine
	other.ConfigHash = checkpoint.Hash("full", "seed=2")
	if err := st.Put(other, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	entries, err := st.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].State != checkpoint.ScanComplete {
		t.Fatalf("entries = %+v, want one complete", entries)
	}
	if !entries[0].Foreign(mine) {
		t.Error("different-config entry not classified foreign")
	}
	if entries[0].Foreign(other) {
		t.Error("own entry classified foreign")
	}
}

// TestComplete folds Scan against a unit plan: only exact-identity,
// verifying checkpoints count as done.
func TestComplete(t *testing.T) {
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	metas := make([]checkpoint.Meta, 4)
	for i := range metas {
		metas[i] = testMeta()
		metas[i].Shard = i
	}
	if err := st.Put(metas[1], []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(metas[2], []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(st.Path(metas[2]), 3); err != nil {
		t.Fatal(err)
	}
	done, err := st.Complete(metas)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false, false}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("Complete[%d] = %v, want %v", i, done[i], want[i])
		}
	}
}

// TestAdoptFrame: a verified frame from another directory merges under its
// canonical name; torn frames are rejected; byte-identical duplicates are
// no-ops; conflicting bytes for one identity are a hard error.
func TestAdoptFrame(t *testing.T) {
	src, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dst, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testMeta()
	if err := src.Put(m, []byte("result")); err != nil {
		t.Fatal(err)
	}
	frame, err := os.ReadFile(src.Path(m))
	if err != nil {
		t.Fatal(err)
	}

	got, res, err := dst.AdoptFrame(frame)
	if err != nil || res != checkpoint.Adopted || got != m {
		t.Fatalf("first adopt: meta=%+v res=%v err=%v", got, res, err)
	}
	if payload, ok, err := dst.Get(m); err != nil || !ok || !bytes.Equal(payload, []byte("result")) {
		t.Fatalf("adopted checkpoint not readable: ok=%v err=%v payload=%q", ok, err, payload)
	}

	if _, res, err := dst.AdoptFrame(frame); err != nil || res != checkpoint.AlreadyPresent {
		t.Fatalf("duplicate adopt: res=%v err=%v", res, err)
	}

	if _, res, err := dst.AdoptFrame(frame[:len(frame)-2]); err != nil || res != checkpoint.RejectedTorn {
		t.Fatalf("torn adopt: res=%v err=%v", res, err)
	}

	// Same identity, different payload: purity violation must error loudly.
	src2, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := src2.Put(m, []byte("OTHER!")); err != nil {
		t.Fatal(err)
	}
	conflict, err := os.ReadFile(src2.Path(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dst.AdoptFrame(conflict); err == nil {
		t.Fatal("conflicting adopt did not error")
	}

	// A torn file already in the store is replaced by a verifying frame.
	if err := os.Truncate(dst.Path(m), 5); err != nil {
		t.Fatal(err)
	}
	if _, res, err := dst.AdoptFrame(frame); err != nil || res != checkpoint.Adopted {
		t.Fatalf("adopt over torn file: res=%v err=%v", res, err)
	}
}

// TestFileBaseSharedStem pins that checkpoint, lease, and abort artifacts
// can share one per-unit stem: Path is FileBase + ".ckpt".
func TestFileBaseSharedStem(t *testing.T) {
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testMeta()
	if got, want := filepath.Base(st.Path(m)), m.FileBase()+".ckpt"; got != want {
		t.Fatalf("Path base %q, want %q", got, want)
	}
}
