package checkpoint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"randfill/internal/checkpoint"
	"randfill/internal/rng"
)

func testMeta() checkpoint.Meta {
	return checkpoint.Meta{
		Experiment:    "Figure2/collect",
		Shard:         3,
		Seed:          0xdeadbeef,
		ConfigHash:    checkpoint.Hash("quick", "seed=1"),
		StreamVersion: rng.StreamVersion,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testMeta()
	payload := []byte{1, 2, 3, 0xff, 0}
	if err := st.Put(m, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(m)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %v, want %v", got, payload)
	}
}

func TestGetMissing(t *testing.T) {
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(testMeta()); ok || err != nil {
		t.Fatalf("missing shard: ok=%v err=%v", ok, err)
	}
}

func TestEmptyPayload(t *testing.T) {
	st, _ := checkpoint.Open(t.TempDir())
	m := testMeta()
	if err := st.Put(m, nil); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(m)
	if err != nil || !ok || len(got) != 0 {
		t.Fatalf("empty payload: got %v ok=%v err=%v", got, ok, err)
	}
}

// shardFile locates the single checkpoint file in the store's directory.
func shardFile(t *testing.T, st *checkpoint.Store) string {
	t.Helper()
	ents, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("want exactly 1 checkpoint file, have %d", len(ents))
	}
	return filepath.Join(st.Dir(), ents[0].Name())
}

func TestTornFileReadsAsMissing(t *testing.T) {
	st, _ := checkpoint.Open(t.TempDir())
	m := testMeta()
	if err := st.Put(m, []byte("accumulator state")); err != nil {
		t.Fatal(err)
	}
	path := shardFile(t, st)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: the file stops half-way through the body.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(m); ok || err != nil {
		t.Fatalf("torn file: ok=%v err=%v, want missing", ok, err)
	}
}

func TestBitFlipReadsAsMissing(t *testing.T) {
	st, _ := checkpoint.Open(t.TempDir())
	m := testMeta()
	if err := st.Put(m, []byte("accumulator state")); err != nil {
		t.Fatal(err)
	}
	path := shardFile(t, st)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit past the header.
	data[len(data)-3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(m); ok || err != nil {
		t.Fatalf("bit-flipped file: ok=%v err=%v, want missing", ok, err)
	}
}

func TestMetaMismatchReadsAsMissing(t *testing.T) {
	st, _ := checkpoint.Open(t.TempDir())
	m := testMeta()
	if err := st.Put(m, []byte("x")); err != nil {
		t.Fatal(err)
	}
	cases := []func(*checkpoint.Meta){
		func(m *checkpoint.Meta) { m.Seed++ },
		func(m *checkpoint.Meta) { m.StreamVersion++ },
	}
	for i, mutate := range cases {
		q := m
		mutate(&q)
		if _, ok, _ := st.Get(q); ok {
			t.Errorf("case %d: mismatched meta loaded a checkpoint", i)
		}
	}
	// A different config hash or shard resolves to a different file name, so
	// it is missing by construction.
	q := m
	q.ConfigHash++
	if _, ok, _ := st.Get(q); ok {
		t.Error("different config hash loaded a checkpoint")
	}
}

func TestPutOverwrites(t *testing.T) {
	st, _ := checkpoint.Open(t.TempDir())
	m := testMeta()
	if err := st.Put(m, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(m, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(m)
	if err != nil || !ok || string(got) != "second" {
		t.Fatalf("got %q ok=%v err=%v", got, ok, err)
	}
}

func TestShardsAndExperimentsAreDistinctFiles(t *testing.T) {
	st, _ := checkpoint.Open(t.TempDir())
	a := testMeta()
	b := a
	b.Shard = 4
	c := a
	c.Experiment = "Table3/cells"
	for i, m := range []checkpoint.Meta{a, b, c} {
		if err := st.Put(m, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range []checkpoint.Meta{a, b, c} {
		got, ok, err := st.Get(m)
		if err != nil || !ok || len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("meta %d: got %v ok=%v err=%v", i, got, ok, err)
		}
	}
}

func TestHashIsOrderAndBoundarySensitive(t *testing.T) {
	if checkpoint.Hash("a", "b") == checkpoint.Hash("b", "a") {
		t.Error("hash ignores order")
	}
	if checkpoint.Hash("ab", "c") == checkpoint.Hash("a", "bc") {
		t.Error("hash ignores part boundaries")
	}
	if checkpoint.Hash("a") != checkpoint.Hash("a") {
		t.Error("hash not deterministic")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := checkpoint.Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
