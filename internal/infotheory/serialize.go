package infotheory

import (
	"encoding/binary"
	"errors"
)

// ErrCorrupt reports a P1P2Result encoding that does not frame correctly;
// the checkpoint layer treats the shard as missing.
var ErrCorrupt = errors.New("infotheory: corrupt serialized P1P2Result")

// p1p2Size is the encoded size of a P1P2Result: the four integer counts.
const p1p2Size = 32

// MarshalBinary implements encoding.BinaryMarshaler. Only the integer
// counts are stored: P1 and P2 are pure functions of the counts and are
// recomputed on decode, so a round-tripped result is exactly (not just
// approximately) the original — the division happens once either way.
func (r P1P2Result) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, p1p2Size)
	out = binary.LittleEndian.AppendUint64(out, r.CollisionPairs)
	out = binary.LittleEndian.AppendUint64(out, r.NoCollisionPairs)
	out = binary.LittleEndian.AppendUint64(out, r.P1Hits)
	return binary.LittleEndian.AppendUint64(out, r.P2Hits), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (r *P1P2Result) UnmarshalBinary(data []byte) error {
	if len(data) != p1p2Size {
		return ErrCorrupt
	}
	r.CollisionPairs = binary.LittleEndian.Uint64(data[0:8])
	r.NoCollisionPairs = binary.LittleEndian.Uint64(data[8:16])
	r.P1Hits = binary.LittleEndian.Uint64(data[16:24])
	r.P2Hits = binary.LittleEndian.Uint64(data[24:32])
	r.P1, r.P2 = 0, 0
	if r.CollisionPairs > 0 {
		r.P1 = float64(r.P1Hits) / float64(r.CollisionPairs)
	}
	if r.NoCollisionPairs > 0 {
		r.P2 = float64(r.P2Hits) / float64(r.NoCollisionPairs)
	}
	return nil
}
