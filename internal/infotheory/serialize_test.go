package infotheory

import "testing"

func TestP1P2ResultRoundTripExact(t *testing.T) {
	r := P1P2Result{CollisionPairs: 1234, NoCollisionPairs: 98765, P1Hits: 700, P2Hits: 43210}
	r.Merge(P1P2Result{}) // populate P1/P2 from the counts
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got P1P2Result
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip: got %+v, want %+v", got, r)
	}
}

func TestP1P2ResultRoundTripZeroCounts(t *testing.T) {
	var r P1P2Result
	data, _ := r.MarshalBinary()
	var got P1P2Result
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip: got %+v, want %+v", got, r)
	}
}

func TestP1P2ResultUnmarshalRejectsBadSize(t *testing.T) {
	var r P1P2Result
	for _, n := range []int{0, 31, 33} {
		if err := r.UnmarshalBinary(make([]byte, n)); err == nil {
			t.Fatalf("len %d: want error", n)
		}
	}
}
