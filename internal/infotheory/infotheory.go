// Package infotheory implements the paper's security analyses (Section V):
// the storage-channel capacity of the random fill cache (Equations 7 and 8,
// Figure 5), the Monte Carlo estimation of the timing-channel signal P1-P2
// (Equation 6, Table III), and the analytic estimate of the number of
// measurements a cache collision attack needs (Equation 5).
package infotheory

import (
	"context"
	"math"

	"randfill/internal/aes"
	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/parexp"
	"randfill/internal/rng"
)

// Capacity returns the storage-channel capacity in bits for a
// security-critical region of M cache lines under a random fill window
// [-a, +b] (Equation 8). The sender S is the victim's accessed line
// (uniform over M); the receiver R observes which line was randomly filled.
// With a = b = 0 (demand fetch) the channel is the identity and the
// capacity is log2(M).
func Capacity(m, a, b int) float64 {
	if m <= 0 {
		return 0
	}
	w := a + b + 1
	// Receiver symbols j span [0-a, m-1+b] relative to the region start.
	// P(R=j) = sum_i P(S=i) P(R=j|S=i) = colCount(j) / (M*W), where
	// colCount(j) = |{i : i-a <= j <= i+b}|.
	var c float64
	for i := 0; i < m; i++ {
		for j := i - a; j <= i+b; j++ {
			// Pij = 1/W. Column sum over i' for this j.
			lo := j - b
			if lo < 0 {
				lo = 0
			}
			hi := j + a
			if hi > m-1 {
				hi = m - 1
			}
			col := float64(hi-lo+1) / float64(w)
			pij := 1.0 / float64(w)
			// Contribution: (1/M) Pij log2(M Pij / colSum).
			c += pij / float64(m) * math.Log2(float64(m)*pij/col)
		}
	}
	if c < 0 {
		c = 0
	}
	return c
}

// NormalizedCapacity returns Capacity(m,a,b) / Capacity(m,0,0), the
// quantity Figure 5 plots (capacity normalized to the demand fetch case).
func NormalizedCapacity(m, a, b int) float64 {
	denom := Capacity(m, 0, 0)
	if denom == 0 {
		return 0
	}
	return Capacity(m, a, b) / denom
}

// MeasurementsRequired implements Equation 5: the number of measurements N
// for a successful collision attack given the timing signal
// (P1-P2)(tmiss-thit), the execution-time standard deviation sigmaT, and
// the desired success likelihood alpha. It returns +Inf when the signal is
// zero (the attack cannot succeed).
func MeasurementsRequired(p1MinusP2, tMissMinusTHit, sigmaT, alpha float64) float64 {
	signal := p1MinusP2 * tMissMinusTHit
	if signal == 0 || sigmaT <= 0 {
		return math.Inf(1)
	}
	z := normalQuantile(alpha)
	r := signal / sigmaT
	return 2 * z * z / (r * r)
}

// normalQuantile mirrors stats.NormalQuantile without importing it (to keep
// this package's dependencies to the cache model only). Accuracy follows
// the Acklam approximation.
func normalQuantile(alpha float64) float64 {
	// Bisection on the complementary error function is ample here: Eq. 5
	// only needs a few digits.
	lo, hi := -10.0, 10.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if normalCDF(mid) < alpha {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func normalCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// P1P2Config configures the Monte Carlo estimation of P1 and P2 for the
// AES final-round table (Table III).
type P1P2Config struct {
	// NewCache builds a fresh (or freshly flushed) cache for each trial
	// series; it is invoked once and the cache is flushed per trial.
	NewCache func(src *rng.Source) cache.Cache
	// Window is the victim's random fill window.
	Window rng.Window
	// Trials is the number of Monte Carlo trials (the paper uses
	// 100,000, each encrypting one block of random plaintext).
	Trials int
	// Lookups is the number of security-critical lookups per trial (16
	// final-round lookups per block).
	Lookups int
	// Region is the security-critical table (16 lines for a 1 KB table).
	Region mem.Region
	// Seed drives plaintext/key randomness and the fill engine.
	Seed uint64
}

// P1P2Result reports the Monte Carlo estimates. It is mergeable: the raw
// integer counts behind the ratios are carried so that shard estimates fold
// together exactly (integer sums, no floating-point accumulation order),
// which is what makes the sharded Table III worker-count invariant.
type P1P2Result struct {
	P1, P2 float64
	// Pairs counted in each condition.
	CollisionPairs, NoCollisionPairs uint64
	// Hits counted in each condition (numerators of P1 and P2).
	P1Hits, P2Hits uint64
}

// Diff returns P1 - P2, the attacker's signal.
func (r P1P2Result) Diff() float64 { return r.P1 - r.P2 }

// Merge folds other's trials into r, as if r's Monte Carlo run had
// performed them itself, and recomputes the ratios from the summed counts.
func (r *P1P2Result) Merge(other P1P2Result) {
	r.CollisionPairs += other.CollisionPairs
	r.NoCollisionPairs += other.NoCollisionPairs
	r.P1Hits += other.P1Hits
	r.P2Hits += other.P2Hits
	r.P1, r.P2 = 0, 0
	if r.CollisionPairs > 0 {
		r.P1 = float64(r.P1Hits) / float64(r.CollisionPairs)
	}
	if r.NoCollisionPairs > 0 {
		r.P2 = float64(r.P2Hits) / float64(r.NoCollisionPairs)
	}
}

// MonteCarloP1P2 estimates P1 = P(xj hit | <xi> = <xj>) and
// P2 = P(xj hit | <xi> != <xj>) averaged over all lookup pairs (i < j)
// within each trial's security-critical lookup sequence, starting each
// trial from a clean cache (the attacker's best case, Section V.A).
//
// Each trial performs an actual AES final round: a random key and plaintext
// block are encrypted and the 16 T4 lookup indices drive the cache.
func MonteCarloP1P2(cfg P1P2Config) P1P2Result {
	src := rng.New(cfg.Seed)
	cacheSrc := src.Split(1)
	keySrc := src.Split(2)
	engineSrc := src.Split(3)

	c := cfg.NewCache(cacheSrc)
	eng := core.NewEngine(c, engineSrc)
	eng.SetRR(cfg.Window.A, cfg.Window.B)

	lookups := cfg.Lookups
	if lookups == 0 {
		lookups = 16
	}

	var hit = make([]bool, lookups)
	var lines = make([]mem.Line, lookups)

	var res P1P2Result

	var key, pt, ct [16]byte
	// One cipher and one recorder serve all trials: SetKey re-keys in place
	// and the index slice is truncated per trial, so the hot loop's only
	// work is the key schedule and the traced final round.
	cipher := &aes.Cipher{}
	rec := &finalRoundRec{}
	for trial := 0; trial < cfg.Trials; trial++ {
		c.Flush()
		keySrc.Bytes(key[:])
		keySrc.Bytes(pt[:])
		if err := cipher.SetKey(key[:]); err != nil {
			panic(err)
		}
		rec.idx = rec.idx[:0]
		cipher.Encrypt(ct[:], pt[:], rec)

		for k := 0; k < lookups && k < len(rec.idx); k++ {
			line := cfg.Region.FirstLine() + mem.Line(rec.idx[k]>>4)
			lines[k] = line
			hit[k] = eng.Access(line, false)
		}

		for j := 1; j < lookups; j++ {
			for i := 0; i < j; i++ {
				if lines[i] == lines[j] {
					res.CollisionPairs++
					if hit[j] {
						res.P1Hits++
					}
				} else {
					res.NoCollisionPairs++
					if hit[j] {
						res.P2Hits++
					}
				}
			}
		}
	}
	if res.CollisionPairs > 0 {
		res.P1 = float64(res.P1Hits) / float64(res.CollisionPairs)
	}
	if res.NoCollisionPairs > 0 {
		res.P2 = float64(res.P2Hits) / float64(res.NoCollisionPairs)
	}
	return res
}

// MonteCarloP1P2Sharded splits cfg.Trials over a fixed shard plan, runs each
// shard as an independent MonteCarloP1P2 with its own Split-derived seed on
// eng's worker pool, and merges the shard counts in shard-index order. For a
// fixed (cfg, shards) the result is identical for any worker count; it is a
// different (equally valid) Monte Carlo sample than the serial
// MonteCarloP1P2 at the same cfg.Seed, because the shards draw from split
// streams.
func MonteCarloP1P2Sharded(eng *parexp.Engine, cfg P1P2Config, shards int) P1P2Result {
	res, err := MonteCarloP1P2ShardedCtx(context.Background(), eng, cfg, shards)
	if err != nil {
		panic(err)
	}
	return res
}

// MonteCarloP1P2ShardedCtx is MonteCarloP1P2Sharded with cooperative
// cancellation between shards; a cancelled run discards the partial counts
// and returns ctx's error.
func MonteCarloP1P2ShardedCtx(ctx context.Context, eng *parexp.Engine, cfg P1P2Config, shards int) (P1P2Result, error) {
	if shards < 1 {
		shards = 1
	}
	seeds := parexp.ShardSeeds(cfg.Seed, shards)
	counts := parexp.SplitCounts(cfg.Trials, shards)
	parts, err := parexp.MapCtx(eng, ctx, shards, func(_ context.Context, s int) (P1P2Result, error) {
		scfg := cfg
		scfg.Seed = seeds[s]
		scfg.Trials = counts[s]
		return MonteCarloP1P2(scfg), nil
	})
	if err != nil {
		return P1P2Result{}, err
	}
	res := parts[0]
	for _, p := range parts[1:] {
		res.Merge(p)
	}
	return res, nil
}

// finalRoundRec captures final-round (Te4) lookup indices.
type finalRoundRec struct{ idx []byte }

// Lookup implements aes.Recorder.
func (r *finalRoundRec) Lookup(table int, index byte, round int, first bool) {
	if table == aes.TableTe4 {
		r.idx = append(r.idx, index)
	}
}
