package infotheory

import (
	"math"
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

func TestCapacityDemandFetchIsLogM(t *testing.T) {
	for _, m := range []int{8, 16, 64, 128} {
		got := Capacity(m, 0, 0)
		want := math.Log2(float64(m))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Capacity(%d,0,0) = %v, want %v", m, got, want)
		}
	}
}

func TestCapacityDecreasesWithWindow(t *testing.T) {
	m := 16
	prev := math.Inf(1)
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64} {
		win := rng.Symmetric(w)
		c := Capacity(m, win.A, win.B)
		if c > prev+1e-9 {
			t.Errorf("capacity increased at window %d: %v > %v", w, c, prev)
		}
		prev = c
	}
}

func TestCapacityNeverClosesCompletely(t *testing.T) {
	// The boundary effect keeps the storage channel open (Section V.B).
	c := Capacity(16, 16, 15)
	if c <= 0 {
		t.Errorf("capacity with covering window = %v, want > 0 (boundary effect)", c)
	}
	if c > 1 {
		t.Errorf("capacity %v too large for a covering window", c)
	}
}

func TestCapacityOrderOfMagnitudeDrop(t *testing.T) {
	// Paper: "the channel capacity is already reduced by more than one
	// order of magnitude when the window size is twice the size of the
	// security-critical region."
	for _, m := range []int{16, 64, 128} {
		w := rng.Symmetric(2 * m)
		nc := NormalizedCapacity(m, w.A, w.B)
		if nc > 0.1 {
			t.Errorf("M=%d window=2M: normalized capacity %v > 0.1", m, nc)
		}
	}
}

func TestCapacityBoundaryEffectShrinksWithM(t *testing.T) {
	// Larger security-critical regions leak relatively less at the same
	// normalized window size.
	w8 := rng.Symmetric(2 * 8)
	w128 := rng.Symmetric(2 * 128)
	small := NormalizedCapacity(8, w8.A, w8.B)
	large := NormalizedCapacity(128, w128.A, w128.B)
	if large >= small {
		t.Errorf("normalized capacity M=128 (%v) not below M=8 (%v)", large, small)
	}
}

func TestCapacityDegenerate(t *testing.T) {
	if Capacity(0, 0, 0) != 0 {
		t.Error("M=0 capacity not 0")
	}
	if Capacity(1, 0, 0) != 0 {
		t.Error("M=1 carries no information, capacity must be 0")
	}
}

func TestMeasurementsRequired(t *testing.T) {
	// Zero signal → unattackable.
	if !math.IsInf(MeasurementsRequired(0, 179, 50, 0.99), 1) {
		t.Error("zero signal must require infinite measurements")
	}
	// Stronger signal → fewer measurements, monotonically.
	n1 := MeasurementsRequired(0.6, 179, 500, 0.99)
	n2 := MeasurementsRequired(0.3, 179, 500, 0.99)
	n3 := MeasurementsRequired(0.05, 179, 500, 0.99)
	if !(n1 < n2 && n2 < n3) {
		t.Errorf("measurement counts not monotone: %v %v %v", n1, n2, n3)
	}
	// Halving the signal quadruples the cost.
	if math.Abs(n2/n1-4) > 1e-6 {
		t.Errorf("n2/n1 = %v, want 4", n2/n1)
	}
	// Higher confidence costs more.
	if MeasurementsRequired(0.3, 179, 500, 0.999) <= MeasurementsRequired(0.3, 179, 500, 0.9) {
		t.Error("higher alpha must require more measurements")
	}
}

func newSA32K(src *rng.Source) cache.Cache {
	return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
}

func TestMonteCarloDemandFetchSignal(t *testing.T) {
	// With demand fetch (window size 1), P1 = 1 exactly (a collision
	// with a previously accessed line always hits from a clean cache)
	// and P1-P2 is large — the Table III "size=1" column.
	res := MonteCarloP1P2(P1P2Config{
		NewCache: newSA32K,
		Window:   rng.Window{},
		Trials:   4000,
		Region:   mem.Region{Base: 0x11000, Size: 1024},
		Seed:     1,
	})
	if res.P1 != 1 {
		t.Errorf("P1 = %v, want exactly 1 under demand fetch", res.P1)
	}
	if d := res.Diff(); d < 0.4 || d > 0.8 {
		t.Errorf("P1-P2 = %v, want large (paper: 0.652)", d)
	}
}

func TestMonteCarloSignalDecaysWithWindow(t *testing.T) {
	region := mem.Region{Base: 0x11000, Size: 1024}
	prev := 1.0
	for _, size := range []int{1, 2, 4, 8, 16, 32} {
		res := MonteCarloP1P2(P1P2Config{
			NewCache: newSA32K,
			Window:   rng.Symmetric(size),
			Trials:   4000,
			Region:   region,
			Seed:     7,
		})
		d := res.Diff()
		if d > prev+0.02 {
			t.Errorf("window %d: P1-P2 %v did not decay (prev %v)", size, d, prev)
		}
		prev = d
	}
	if prev > 0.05 {
		t.Errorf("window 32: P1-P2 = %v, want ≈ 0 (paper: 0.006)", prev)
	}
}

func TestMonteCarloCoveringWindowZerosSignal(t *testing.T) {
	// With a,b >= M-1 the window covers the table for every lookup and
	// P1-P2 ≈ 0 (Section V.A's sufficient condition).
	res := MonteCarloP1P2(P1P2Config{
		NewCache: newSA32K,
		Window:   rng.Window{A: 16, B: 15},
		Trials:   20000,
		Region:   mem.Region{Base: 0x11000, Size: 1024},
		Seed:     3,
	})
	if d := math.Abs(res.Diff()); d > 0.02 {
		t.Errorf("covering window: |P1-P2| = %v, want ≈ 0", d)
	}
}
