package infotheory

import (
	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/sim"
	"randfill/internal/stats"
)

// TimingSignalResult validates the paper's analytical timing-channel model
// (Equations 2-4) against the timing simulator: for a controlled pair of
// security-critical accesses, the measured expected-time difference
// mu2 - mu1 must equal (P1 - P2)(tmiss - thit).
type TimingSignalResult struct {
	// Mu1 and Mu2 are the measured mean execution times under collision
	// and no-collision (cycles).
	Mu1, Mu2 float64
	// P1 and P2 are the measured hit probabilities of the second access
	// under the two conditions.
	P1, P2 float64
	// Predicted is (P1-P2)*(tmiss-thit), the Equation 4 right-hand side.
	Predicted float64
	// Measured is mu2 - mu1, the left-hand side.
	Measured float64
	Trials   int
}

// TimingSignalConfig controls the microbenchmark.
type TimingSignalConfig struct {
	// Window is the victim's random fill window.
	Window rng.Window
	// Region is the security-critical table (M lines).
	Region mem.Region
	// Trials per condition.
	Trials int
	// Gap is the number of filler accesses between the two
	// security-critical accesses, giving an issued random fill time to
	// land.
	Gap  int
	Seed uint64
}

// MeasureTimingSignal runs the two-access microbenchmark of Section V.A on
// the timing simulator: from a clean L1 (warm L2), access x_i, give the
// fill time to land, then access x_j; measure the end-to-end time and
// whether x_j hit. Conditioning on <x_i> = <x_j> vs not yields mu1/mu2 and
// P1/P2 in the same runs, so Equation 4 can be checked without auxiliary
// assumptions.
func MeasureTimingSignal(cfg TimingSignalConfig) TimingSignalResult {
	if cfg.Trials == 0 {
		cfg.Trials = 4000
	}
	if cfg.Gap == 0 {
		cfg.Gap = 40
	}
	src := rng.New(cfg.Seed ^ 0x71417)

	simCfg := sim.DefaultConfig()
	simCfg.MissQueue = 1 // fully serialized: latencies are exposed
	simCfg.Seed = cfg.Seed
	m := sim.New(simCfg)
	tc := sim.ThreadConfig{}
	if !cfg.Window.Zero() {
		tc = sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: cfg.Window}
	}
	th := m.NewThread(tc)

	lines := cfg.Region.Lines()
	filler := mem.Line(0x70000) // hot filler line, outside the region

	// Warm the L2 (and the filler line's L2 entry).
	for _, l := range lines {
		th.Step(mem.Access{Addr: mem.AddrOf(l)})
	}
	th.Step(mem.Access{Addr: mem.AddrOf(filler)})
	th.Drain()

	var mu1, mu2 stats.Running
	var hits1, hits2, n1, n2 float64

	for t := 0; t < 2*cfg.Trials; t++ {
		i := src.Intn(len(lines))
		j := i
		collide := t%2 == 0
		if !collide {
			for j == i {
				j = src.Intn(len(lines))
			}
		}
		m.L1().Flush()
		th.Drain()
		start := th.Cycle()
		th.Step(mem.Access{Addr: mem.AddrOf(lines[i]), Dependent: true, Secret: true})
		for g := 0; g < cfg.Gap; g++ {
			th.Step(mem.Access{Addr: mem.AddrOf(filler), NonMem: 1})
		}
		before := th.Result().Hits
		th.Step(mem.Access{Addr: mem.AddrOf(lines[j]), Dependent: true, Secret: true})
		hit := th.Result().Hits > before
		// End the measurement when x_j's data arrives (a dependent
		// closing access), NOT at a full drain: waiting for background
		// random fills to land would put their latency on the measured
		// path, which a victim's end-to-end time does not include.
		th.Step(mem.Access{Addr: mem.AddrOf(filler), Dependent: true})
		elapsed := th.Cycle() - start

		if collide {
			mu1.Add(elapsed)
			n1++
			if hit {
				hits1++
			}
		} else {
			mu2.Add(elapsed)
			n2++
			if hit {
				hits2++
			}
		}
	}

	res := TimingSignalResult{
		Mu1:    mu1.Mean(),
		Mu2:    mu2.Mean(),
		P1:     hits1 / n1,
		P2:     hits2 / n2,
		Trials: cfg.Trials,
	}
	tmissMinusThit := float64(simCfg.L2HitLat - simCfg.L1HitLat)
	res.Predicted = (res.P1 - res.P2) * tmissMinusThit
	res.Measured = res.Mu2 - res.Mu1
	return res
}
