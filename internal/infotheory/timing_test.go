package infotheory

import (
	"math"
	"testing"

	"randfill/internal/mem"
	"randfill/internal/rng"
)

func region16() mem.Region { return mem.Region{Base: 0x11000, Size: 1024} }

func TestEquation4DemandFetch(t *testing.T) {
	// Demand fetch: P1 = 1, P2 = 0 in the two-access microbenchmark, so
	// mu2 - mu1 must equal the full tmiss - thit = 19 cycles.
	res := MeasureTimingSignal(TimingSignalConfig{
		Window: rng.Window{},
		Region: region16(),
		Trials: 1500,
		Seed:   1,
	})
	if res.P1 != 1 {
		t.Errorf("P1 = %v, want 1 under demand fetch", res.P1)
	}
	if res.P2 != 0 {
		t.Errorf("P2 = %v, want 0 (distinct lines from a clean cache)", res.P2)
	}
	if math.Abs(res.Measured-res.Predicted) > 2 {
		t.Errorf("Eq.4 violated: measured %v vs predicted %v", res.Measured, res.Predicted)
	}
	if res.Measured < 15 {
		t.Errorf("measured signal %v, want ≈ 19 cycles", res.Measured)
	}
}

func TestEquation4RandomFillWindows(t *testing.T) {
	// Under random fill the measured timing difference must track the
	// analytical (P1-P2)(tmiss-thit) across window sizes, shrinking to
	// ≈ 0 at the covering window.
	for _, size := range []int{2, 8, 32} {
		res := MeasureTimingSignal(TimingSignalConfig{
			Window: rng.Symmetric(size),
			Region: region16(),
			Trials: 3000,
			Seed:   uint64(size),
		})
		if math.Abs(res.Measured-res.Predicted) > 2.5 {
			t.Errorf("size %d: Eq.4 violated: measured %v vs predicted %v (P1=%v P2=%v)",
				size, res.Measured, res.Predicted, res.P1, res.P2)
		}
	}
	covering := MeasureTimingSignal(TimingSignalConfig{
		Window: rng.Window{A: 16, B: 15},
		Region: region16(),
		Trials: 4000,
		Seed:   9,
	})
	if math.Abs(covering.Measured) > 1.5 {
		t.Errorf("covering window: measured signal %v, want ≈ 0", covering.Measured)
	}
	if math.Abs(covering.P1-covering.P2) > 0.03 {
		t.Errorf("covering window: P1-P2 = %v, want ≈ 0", covering.P1-covering.P2)
	}
}

func TestEquation4SignalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, size := range []int{1, 4, 16} {
		res := MeasureTimingSignal(TimingSignalConfig{
			Window: rng.Symmetric(size),
			Region: region16(),
			Trials: 2000,
			Seed:   uint64(100 + size),
		})
		if res.Measured > prev+1 {
			t.Errorf("size %d: signal %v rose above %v", size, res.Measured, prev)
		}
		prev = res.Measured
	}
}
