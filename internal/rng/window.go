package rng

import "fmt"

// Window is a neighborhood window [-A, +B] of line offsets around a demand
// miss line i, as configured in the random fill engine's range registers RR1
// and RR2 (paper Section IV.B). A window of [0,0] disables random fill: the
// cache behaves as a conventional demand-fetch cache.
type Window struct {
	A int // lines before the demand miss (lower bound is -A)
	B int // lines after the demand miss (upper bound is +B)
}

// Size returns the number of candidate lines in the window, a+b+1 (W in the
// paper's analysis).
func (w Window) Size() int { return w.A + w.B + 1 }

// Zero reports whether the window is [0,0], i.e. random fill is disabled and
// the cache performs conventional demand fetch.
func (w Window) Zero() bool { return w.A == 0 && w.B == 0 }

// Valid reports whether both bounds are non-negative.
func (w Window) Valid() bool { return w.A >= 0 && w.B >= 0 }

func (w Window) String() string { return fmt.Sprintf("[-%d,+%d]", w.A, w.B) }

// Symmetric returns the bidirectional window [-(size/2), +(size/2 - 1)] of
// the given power-of-two size, the form [i-2^(n-1), i+2^(n-1)-1] the paper
// uses for its security evaluation (Table III). Size 1 yields [0,0].
func Symmetric(size int) Window {
	if size <= 1 {
		return Window{}
	}
	return Window{A: size / 2, B: size - size/2 - 1}
}

// Forward returns the forward-only window [0, size-1]. Size 1 yields [0,0].
func Forward(size int) Window {
	if size <= 1 {
		return Window{}
	}
	return Window{A: 0, B: size - 1}
}

// WindowGenerator models the random fill engine datapath of Figure 4:
// two range registers hold the lower bound -a and the mask 2^n - 1 for a
// power-of-two window size; a random byte R from the free-running RNG is
// masked to R' = R & (2^n - 1) and added to -a, giving a bounded random
// offset in [-a, -a + 2^n - 1]. The bounded offset can be computed ahead of
// the miss; the only operation on the critical path is the final add of the
// demand miss line address.
//
// The general (non-power-of-two) set_RR configuration is also supported, in
// which case offsets are drawn with Intn over the window size.
type WindowGenerator struct {
	src *Source

	// Range-register state.
	lower   int    // RR1: lower bound -a, stored sign-extended
	mask    uint64 // RR2: 2^n - 1 for power-of-two windows, or 0
	general Window // used when the window size is not a power of two

	pow2 bool
}

// NewWindowGenerator returns a generator drawing from src with the window
// set to [0,0] (random fill disabled).
func NewWindowGenerator(src *Source) *WindowGenerator {
	g := &WindowGenerator{src: src}
	g.SetWindow(Window{})
	return g
}

// SetWindow programs the range registers for window w. This is the model of
// the set_RR / set_window system calls (paper Table II): if the window size
// is a power of two the optimized mask datapath of Figure 4 is used,
// otherwise the general bounded draw is used. It panics on an invalid
// window, mirroring the OS rejecting bad syscall arguments.
func (g *WindowGenerator) SetWindow(w Window) {
	if !w.Valid() {
		panic(fmt.Sprintf("rng: invalid random fill window %v", w))
	}
	g.general = w
	size := w.Size()
	if size&(size-1) == 0 {
		g.pow2 = true
		g.lower = -w.A
		g.mask = uint64(size - 1)
	} else {
		g.pow2 = false
		g.lower = -w.A
		g.mask = 0
	}
}

// Window returns the currently programmed window.
func (g *WindowGenerator) Window() Window { return g.general }

// Offset draws a random line offset within the programmed window. With the
// window at [0,0] it always returns 0.
func (g *WindowGenerator) Offset() int {
	if g.general.Zero() {
		return 0
	}
	if g.pow2 {
		r := g.src.Uint64() & g.mask
		return g.lower + int(r)
	}
	return g.lower + g.src.Intn(g.general.Size())
}

// BoundedOffset reproduces the Figure 4 example datapath exactly: given a
// raw 8-bit RNG output r, a lower bound -a (as lower), and window size 2^n,
// it returns the bounded offset (R & (2^n -1)) + lower computed in 8-bit
// two's complement and sign-extended, plus the intermediate masked value R'.
// It exists so tests can check the worked example in the paper
// (R=0x93, a=4, n=3 → R'=3, offset=-1).
func BoundedOffset(r byte, lower int8, n uint) (offset int, masked byte) {
	masked = r & byte(1<<n-1)
	sum := int8(masked) + lower // 8-bit two's complement add
	return int(sum), masked
}
