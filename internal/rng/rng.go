// Package rng provides the deterministic random number generation used by
// every stochastic component of the simulator: the random fill engine, the
// random replacement policies, the synthetic workload generators, and the
// Monte Carlo security analyses.
//
// A hardware random fill engine would use a free-running RNG (the paper
// suggests a PRNG with a truly random seed). For reproducible experiments we
// use a seeded xorshift64* generator; distinct subsystems derive independent
// streams from a root seed via Split.
//
// # Stream version
//
// The byte stream produced by Bytes and Read is versioned: seeds are only
// comparable across runs built from the same stream version.
//
//   - v1 drew one Uint64 per output byte (top byte of each draw).
//   - v2 (current) consumes all 8 bytes of each Uint64 draw, little-endian,
//     so filling n bytes costs ceil(n/8) draws instead of n. Single-byte
//     draws via Byte are unchanged (one draw, top byte).
//
// Goldens and recorded experiment rows generated under v1 were regenerated
// when v2 landed; Uint64/Intn/Float64/Byte consumers were unaffected.
package rng

import "encoding/binary"

// StreamVersion identifies the current byte-stream layout of Bytes/Read
// (see "Stream version" in the package doc). Persisted artifacts that
// embed RNG-derived state — notably internal/checkpoint shard files —
// record this version so a resumed run refuses to merge shards drawn from
// an incompatible stream. Bump it whenever the mapping from (seed, draw
// index) to output bytes changes.
const StreamVersion = 2

// Source is a deterministic pseudo-random number generator (xorshift64*).
// The zero value is not valid; use New.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. A zero seed is remapped to a fixed
// non-zero constant because xorshift has an all-zero fixed point.
func New(seed uint64) *Source {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	s := &Source{state: seed}
	// Warm up so that small seeds do not yield correlated first outputs.
	for i := 0; i < 4; i++ {
		s.Uint64()
	}
	return s
}

// Split derives a new independent Source from s, keyed by id. Two Splits
// with different ids produce unrelated streams, letting subsystems share one
// root seed without sharing a stream.
func (s *Source) Split(id uint64) *Source {
	return New(s.SplitSeed(id))
}

// SplitSeed derives the seed Split(id) would use without allocating the
// child Source. It advances s by one draw, exactly like Split, so the two
// forms are interchangeable draw-for-draw. Callers that fan work out across
// shards (internal/parexp) use this to precompute a deterministic seed per
// shard up front, so the shard streams are a pure function of the root seed
// no matter which goroutine later consumes them.
func (s *Source) SplitSeed(id uint64) uint64 {
	// SplitMix64-style mixing of the current state with the id.
	z := s.Uint64() + id*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift bounded generation (Lemire); bias is negligible for
	// the small n used here (< 2^32).
	return int((s.Uint64() >> 32) * uint64(n) >> 32)
}

// Byte returns a uniform random byte.
func (s *Source) Byte() byte { return byte(s.Uint64() >> 56) }

// Bytes fills p with random bytes, consuming one Uint64 draw per 8 bytes
// (little-endian; a final partial word uses the draw's low bytes). See the
// package comment's stream-version note.
func (s *Source) Bytes(p []byte) {
	for len(p) >= 8 {
		binary.LittleEndian.PutUint64(p, s.Uint64())
		p = p[8:]
	}
	if len(p) > 0 {
		x := s.Uint64()
		for i := range p {
			p[i] = byte(x)
			x >>= 8
		}
	}
}

// Read fills p with random bytes and never fails, making Source an
// io.Reader. This is the deterministic stand-in for crypto/rand.Reader
// (and for math/rand adapters) anywhere a consumer — e.g. big.Int sampling
// in the attack CLIs — wants randomness through the reader interface.
func (s *Source) Read(p []byte) (int, error) {
	s.Bytes(p)
	return len(p), nil
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }
