package rng

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero seed stuck at zero")
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split(1)
	b := root.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split streams overlap: %d identical outputs", same)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 7, 16, 255, 1000} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	s := New(11)
	const n, draws = 16, 160000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: count %d far from expected %d", i, c, want)
		}
	}
}

func TestBytesConsumesWholeWords(t *testing.T) {
	// v2 stream contract (see the package comment): Bytes lays each Uint64
	// draw out little-endian and consumes ceil(len(p)/8) draws total.
	ref := New(17)
	var words [3]uint64
	for i := range words {
		words[i] = ref.Uint64()
	}
	s := New(17)
	var buf [20]byte
	s.Bytes(buf[:])
	for i := range buf {
		if want := byte(words[i/8] >> (8 * (i % 8))); buf[i] != want {
			t.Fatalf("buf[%d] = %#x, want %#x", i, buf[i], want)
		}
	}
	advanced := New(17)
	for i := 0; i < 3; i++ {
		advanced.Uint64()
	}
	if s.Uint64() != advanced.Uint64() {
		t.Error("Bytes(20 bytes) did not consume exactly 3 draws")
	}
}

func TestReadMatchesBytes(t *testing.T) {
	a, b := New(23), New(23)
	p := make([]byte, 33)
	q := make([]byte, 33)
	a.Bytes(p)
	n, err := b.Read(q)
	if n != len(q) || err != nil {
		t.Fatalf("Read = (%d, %v)", n, err)
	}
	for i := range p {
		if p[i] != q[i] {
			t.Fatalf("Read diverged from Bytes at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(9)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / draws
	if frac < 0.23 || frac > 0.27 {
		t.Errorf("Bool(0.25) frequency %v", frac)
	}
}

func TestWindowSizeAndZero(t *testing.T) {
	if (Window{}).Size() != 1 || !(Window{}).Zero() {
		t.Error("zero window must have size 1 and be Zero")
	}
	w := Window{A: 16, B: 15}
	if w.Size() != 32 || w.Zero() {
		t.Errorf("window %v: size %d zero %v", w, w.Size(), w.Zero())
	}
}

func TestSymmetricForward(t *testing.T) {
	// The paper's bidirectional window for size 2^n is [i-2^(n-1), i+2^(n-1)-1].
	cases := []struct {
		size int
		want Window
	}{
		{1, Window{0, 0}},
		{2, Window{1, 0}},
		{4, Window{2, 1}},
		{32, Window{16, 15}},
	}
	for _, c := range cases {
		if got := Symmetric(c.size); got != c.want {
			t.Errorf("Symmetric(%d) = %v, want %v", c.size, got, c.want)
		}
		if got := Symmetric(c.size).Size(); got != c.size {
			t.Errorf("Symmetric(%d).Size() = %d", c.size, got)
		}
	}
	if got := Forward(16); got != (Window{0, 15}) {
		t.Errorf("Forward(16) = %v", got)
	}
}

func TestWindowGeneratorBounds(t *testing.T) {
	for _, w := range []Window{{0, 0}, {1, 0}, {2, 1}, {16, 15}, {4, 3}, {0, 15}, {3, 2}, {5, 7}} {
		g := NewWindowGenerator(New(21))
		g.SetWindow(w)
		for i := 0; i < 5000; i++ {
			off := g.Offset()
			if off < -w.A || off > w.B {
				t.Fatalf("window %v: offset %d out of bounds", w, off)
			}
		}
	}
}

func TestWindowGeneratorUniform(t *testing.T) {
	// Every line in the window must be reachable with roughly equal
	// probability — the uniformity Equation 6's P1 = 1/(a+b+1) relies on.
	w := Window{A: 16, B: 15}
	g := NewWindowGenerator(New(33))
	g.SetWindow(w)
	counts := make(map[int]int)
	const draws = 320000
	for i := 0; i < draws; i++ {
		counts[g.Offset()]++
	}
	if len(counts) != w.Size() {
		t.Fatalf("observed %d distinct offsets, want %d", len(counts), w.Size())
	}
	want := draws / w.Size()
	var offs []int
	for off := range counts {
		offs = append(offs, off)
	}
	sort.Ints(offs)
	for _, off := range offs {
		if c := counts[off]; c < want*9/10 || c > want*11/10 {
			t.Errorf("offset %d: count %d far from %d", off, c, want)
		}
	}
}

func TestWindowGeneratorNonPowerOfTwo(t *testing.T) {
	w := Window{A: 2, B: 2} // size 5, exercises the general path
	g := NewWindowGenerator(New(13))
	g.SetWindow(w)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		off := g.Offset()
		if off < -2 || off > 2 {
			t.Fatalf("offset %d out of [-2,2]", off)
		}
		seen[off] = true
	}
	if len(seen) != 5 {
		t.Errorf("saw %d distinct offsets, want 5", len(seen))
	}
}

func TestWindowGeneratorZeroWindow(t *testing.T) {
	g := NewWindowGenerator(New(1))
	for i := 0; i < 100; i++ {
		if g.Offset() != 0 {
			t.Fatal("zero window must always produce offset 0")
		}
	}
}

func TestSetWindowPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetWindow with negative bound did not panic")
		}
	}()
	NewWindowGenerator(New(1)).SetWindow(Window{A: -1, B: 0})
}

func TestBoundedOffsetPaperExample(t *testing.T) {
	// Figure 4's worked example: RNG output R = 10010011b, window
	// [i-4, i+3] (lower bound -a = -4, size 2^3): R' = 00000011b = 3,
	// bounded offset R' - a = -1, i.e. the random fill request is i-1.
	off, masked := BoundedOffset(0x93, -4, 3)
	if masked != 0x03 {
		t.Errorf("masked = %#x, want 0x03", masked)
	}
	if off != -1 {
		t.Errorf("offset = %d, want -1", off)
	}
}

func TestBoundedOffsetProperty(t *testing.T) {
	// For any raw byte and any power-of-two window, the bounded offset
	// stays within [-a, -a+2^n-1].
	f := func(r byte, aRaw uint8, nRaw uint8) bool {
		n := uint(nRaw % 8)
		a := int8(aRaw % 64)
		off, _ := BoundedOffset(r, -a, n)
		return off >= int(-a) && off <= int(-a)+(1<<n)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
