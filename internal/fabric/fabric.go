// Package fabric is the multi-process experiment coordinator layered on the
// checkpoint store: a fleet of worker processes executes one experiment's
// work units, with a single coordinator handing units out through
// CRC-framed lease files. There is no network stack — the shared filesystem
// (the fabric directory) is the bus, and every file that crosses a process
// boundary goes through internal/atomicio, so a crash at any instant leaves
// either a complete artifact or a verifiably torn one.
//
// Robustness model — workers that die, stall, or double-claim must only
// ever cost work, never correctness:
//
//   - A unit lease names its owner, a generation, and a deadline. Workers
//     renew their leases (heartbeat); a lease whose deadline passes without
//     renewal is expired and the coordinator re-dispatches the unit with
//     the next (strictly higher) generation after an exponential backoff.
//   - Generation fencing: a revoked straggler discovers the newer
//     generation at its next renewal or at checkpoint-publish time. Its
//     late checkpoint write is discarded — or accepted if and only if it is
//     byte-identical to what the store already holds, which the determinism
//     contract (a unit is a pure function of its Meta) guarantees for
//     honest runs. A same-identity checkpoint with *different* bytes is a
//     purity violation and fails the run loudly.
//   - Torn or corrupt lease files read as absent (same discipline as torn
//     checkpoints): the coordinator simply re-leases the unit. Corruption
//     costs work, never correctness.
//   - A second coordinator on a live fabric directory refuses to start; on
//     an expired one it fences the old coordinator by taking over with a
//     higher epoch and a generation counter strictly above every lease the
//     old coordinator could have issued.
//   - The final output is rendered from the checkpoint store alone (the
//     resume path), so the merged table is byte-identical to a
//     single-process run regardless of which worker computed which unit,
//     how many died, or how often units were re-dispatched.
//
// Directory layout under the fabric dir F:
//
//	F/ckpt/                 the shared checkpoint.Store (one file per unit)
//	F/ckpt/aborted/         best-effort markers for units in flight when a
//	                        worker was hard-killed; re-dispatched first
//	F/leases/<unit>.lease   current lease for a unit (atomic rename replaces)
//	F/workers/<id>.lease    worker registration heartbeats
//	F/coordinator.lease     the coordinator's own lease: epoch + the
//	                        persisted generation counter
//	F/done                  written when every unit has a verified checkpoint
//
// DESIGN.md §14 documents the protocol, frame format, and exit codes.
package fabric

import (
	"os"
	"path/filepath"
	"time"
)

// Clock abstracts wall-clock reads so tests (and the clock-skew fault) can
// shift a process's notion of time. Lease deadlines are wall-clock times:
// the fabric is a robustness layer, not a results layer — no simulator or
// experiment state ever depends on these reads, which is why the one
// time.Now call below carries a lint suppression instead of feeding
// internal/rng.
type Clock func() time.Time

// SystemClock reads the real wall clock.
func SystemClock() Clock {
	return func() time.Time {
		//lint:ignore detrand lease deadlines are wall-clock by nature; they schedule work and never feed simulator or experiment state
		return time.Now()
	}
}

// SkewedClock reads the real wall clock offset by skew — the clock-skew
// fault plan, and nothing else, uses it.
func SkewedClock(skew time.Duration) Clock {
	base := SystemClock()
	return func() time.Time { return base().Add(skew) }
}

// Layout resolves the fabric directory's fixed structure.
type Layout struct{ Root string }

// CheckpointDir is the shared store directory.
func (l Layout) CheckpointDir() string { return filepath.Join(l.Root, "ckpt") }

// LeaseDir holds the per-unit lease files.
func (l Layout) LeaseDir() string { return filepath.Join(l.Root, "leases") }

// WorkerDir holds worker registration heartbeats.
func (l Layout) WorkerDir() string { return filepath.Join(l.Root, "workers") }

// CoordinatorLease is the coordinator's own lease file.
func (l Layout) CoordinatorLease() string { return filepath.Join(l.Root, "coordinator.lease") }

// DonePath is the all-units-complete marker.
func (l Layout) DonePath() string { return filepath.Join(l.Root, "done") }

// UnitLease is the lease file for one unit.
func (l Layout) UnitLease(base string) string {
	return filepath.Join(l.LeaseDir(), base+".lease")
}

// WorkerLease is worker id's registration file.
func (l Layout) WorkerLease(id string) string {
	return filepath.Join(l.WorkerDir(), sanitizeID(id)+".lease")
}

// Prepare creates the fabric directory tree.
func (l Layout) Prepare() error {
	for _, d := range []string{l.Root, l.CheckpointDir(), l.LeaseDir(), l.WorkerDir(), AbortDir(l.CheckpointDir())} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}
	return nil
}

// Done reports whether the done marker exists.
func (l Layout) Done() bool {
	_, err := os.Stat(l.DonePath())
	return err == nil
}

// sanitizeID maps a worker/coordinator id to a safe file-name fragment.
func sanitizeID(id string) string {
	out := make([]rune, 0, len(id))
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
