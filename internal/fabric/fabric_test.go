package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"randfill/internal/checkpoint"
)

// testClock is a manually advanced clock shared by every process-in-a-test;
// nothing in these tests reads the wall clock, so lease expiry is exact.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock {
	return &testClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func testPayload(name string, i int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("payload-%s-%d|", name, i)), 4)
}

// testPlan is a pure fake plan: unit i writes testPayload(name, i).
func testPlan(name string, units int) Plan {
	meta := func(i int) checkpoint.Meta {
		return checkpoint.Meta{
			Experiment: name, Shard: i,
			Seed: 42 + uint64(i), ConfigHash: 0xfab1234, StreamVersion: 1,
		}
	}
	return Plan{
		Name:  name,
		Units: units,
		Meta:  meta,
		RunUnit: func(ctx context.Context, i int, store *checkpoint.Store) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return store.Put(meta(i), testPayload(name, i))
		},
	}
}

func openStore(t *testing.T, dir string) *checkpoint.Store {
	t.Helper()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return st
}

func TestLeaseRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "u.lease")
	want := Lease{
		Kind: KindUnit, Owner: "worker-3", Generation: 17,
		Deadline: 123456789, Counter: 99,
		Unit: checkpoint.Meta{Experiment: "Figure2", Shard: 5, Seed: 7, ConfigHash: 0xdead, StreamVersion: 2},
	}
	if err := writeLease(path, want, nil); err != nil {
		t.Fatal(err)
	}
	got, ok, err := readLease(path)
	if err != nil || !ok {
		t.Fatalf("readLease: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestTornLeaseReadsAsAbsent is satellite 3's torn-file case: truncated,
// bit-flipped, garbage, and empty lease files must all read as absent —
// never as an error, never as a lease.
func TestTornLeaseReadsAsAbsent(t *testing.T) {
	dir := t.TempDir()
	valid := encodeLease(Lease{Kind: KindUnit, Owner: "w", Generation: 3, Deadline: 10})
	cases := []struct {
		name string
		data []byte
	}{
		{"truncated", valid[:len(valid)-3]},
		{"bitflip", append(append([]byte{}, valid[:20]...), valid[20]^0x40)},
		{"garbage", []byte("not a lease at all")},
		{"empty", []byte{}},
		{"badmagic", append([]byte("WRONGMAG"), valid[8:]...)},
	}
	for _, tc := range cases {
		name, data := tc.name, tc.data
		path := filepath.Join(dir, name+".lease")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, ok, err := readLease(path)
		if err != nil {
			t.Errorf("%s: unexpected error %v", name, err)
		}
		if ok {
			t.Errorf("%s: torn lease read as present: %+v", name, l)
		}
	}
	// A missing file is equally absent.
	if _, ok, err := readLease(filepath.Join(dir, "missing.lease")); ok || err != nil {
		t.Errorf("missing: ok=%v err=%v, want absent", ok, err)
	}
}

// TestSecondCoordinatorRefuses is satellite 3's two-coordinators case: a
// second coordinator on a fabric dir with a live coordinator lease must
// refuse with ErrCoordinatorHeld.
func TestSecondCoordinatorRefuses(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{Root: dir}
	if err := layout.Prepare(); err != nil {
		t.Fatal(err)
	}
	clk := newTestClock()
	if err := writeLease(layout.CoordinatorLease(), Lease{
		Kind: KindCoordinator, Owner: "coord-A", Generation: 4,
		Deadline: clk.Now().Add(time.Hour).UnixNano(), Counter: 31,
	}, nil); err != nil {
		t.Fatal(err)
	}
	cfg := CoordinatorConfig{Dir: dir, ID: "coord-B", TTL: time.Hour, Poll: time.Millisecond, Clock: clk.Now}
	_, _, err := acquireCoordinator(layout, cfg, clk.Now)
	if !errors.Is(err, ErrCoordinatorHeld) {
		t.Fatalf("second coordinator: got err %v, want ErrCoordinatorHeld", err)
	}
	// RunCoordinator surfaces the same refusal.
	if _, err := RunCoordinator(context.Background(), CoordinatorConfig{
		Dir: dir, ID: "coord-B", Plan: testPlan("X", 1),
		Store: openStore(t, layout.CheckpointDir()),
		TTL:   time.Hour, Poll: time.Millisecond, Clock: clk.Now,
	}); !errors.Is(err, ErrCoordinatorHeld) {
		t.Fatalf("RunCoordinator: got err %v, want ErrCoordinatorHeld", err)
	}
}

// TestCoordinatorTakesOverExpired: an expired coordinator lease is fenced
// by taking the next epoch while continuing the generation counter.
func TestCoordinatorTakesOverExpired(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{Root: dir}
	if err := layout.Prepare(); err != nil {
		t.Fatal(err)
	}
	clk := newTestClock()
	if err := writeLease(layout.CoordinatorLease(), Lease{
		Kind: KindCoordinator, Owner: "coord-A", Generation: 4,
		Deadline: clk.Now().Add(-time.Second).UnixNano(), Counter: 31,
	}, nil); err != nil {
		t.Fatal(err)
	}
	cfg := CoordinatorConfig{Dir: dir, ID: "coord-B", TTL: time.Hour, Poll: time.Millisecond, Clock: clk.Now}
	epoch, counter, err := acquireCoordinator(layout, cfg, clk.Now)
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}
	if epoch != 5 {
		t.Errorf("epoch = %d, want 5 (predecessor's 4 + 1)", epoch)
	}
	if counter != 31 {
		t.Errorf("counter = %d, want 31 carried over", counter)
	}
	// A torn coordinator lease reads as absent: takeover from epoch 0.
	if err := os.WriteFile(layout.CoordinatorLease(), []byte("torn!"), 0o644); err != nil {
		t.Fatal(err)
	}
	epoch, counter, err = acquireCoordinator(layout, cfg, clk.Now)
	if err != nil || epoch != 1 || counter != 0 {
		t.Errorf("torn coordinator lease: epoch=%d counter=%d err=%v, want 1, 0, nil", epoch, counter, err)
	}
}

// TestExpiredThenRenewedRace is satellite 3's race case: a lease expires,
// but its holder renews (same generation) before the coordinator's backoff
// elapses. The coordinator must honor the revived lease — expiry is
// resolved by generation, not by the deadline alone.
func TestExpiredThenRenewedRace(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{Root: dir}
	if err := layout.Prepare(); err != nil {
		t.Fatal(err)
	}
	clk := newTestClock()
	plan := testPlan("Race", 1)
	meta := plan.Meta(0)
	leasePath := layout.UnitLease(meta.FileBase())
	store := openStore(t, layout.CheckpointDir())

	cfg := CoordinatorConfig{
		Dir: dir, ID: "coord", Plan: plan, Store: store,
		TTL: time.Minute, Poll: time.Second,
		BackoffBase: 10 * time.Second, MaxPerWorker: 2, Clock: clk.Now,
	}
	// Live worker registration so dispatch has a target.
	if err := writeLease(layout.WorkerLease("w1"), Lease{
		Kind: KindWorker, Owner: "w1", Deadline: clk.Now().Add(time.Hour).UnixNano(),
	}, nil); err != nil {
		t.Fatal(err)
	}
	// The unit's lease was issued at generation 7 and has expired.
	if err := writeLease(leasePath, Lease{
		Kind: KindUnit, Owner: "w1", Generation: 7,
		Deadline: clk.Now().Add(-time.Second).UnixNano(), Unit: meta,
	}, nil); err != nil {
		t.Fatal(err)
	}

	st := coordState{issued: []uint64{7}, attempts: []int{1}, expiredSince: []time.Time{{}}}
	counter := uint64(7)
	var res CoordinatorResult
	metas := plan.Metas()

	// Tick 1: coordinator observes the expiry but backoff gates re-dispatch.
	if err := dispatchTick(context.Background(), cfg, layout, clk.Now, metas, []bool{false}, &st, &counter, &res); err != nil {
		t.Fatal(err)
	}
	if res.Dispatched != 0 {
		t.Fatalf("dispatched during backoff window: %+v", res)
	}
	if st.expiredSince[0].IsZero() {
		t.Fatal("expiry not recorded")
	}

	// The straggler renews at its original generation before backoff ends.
	if err := writeLease(leasePath, Lease{
		Kind: KindUnit, Owner: "w1", Generation: 7,
		Deadline: clk.Now().Add(time.Minute).UnixNano(), Unit: meta,
	}, nil); err != nil {
		t.Fatal(err)
	}

	// Tick 2 (even past the backoff): the lease is live again at a
	// generation >= issued, so the coordinator must not re-dispatch.
	clk.Advance(15 * time.Second)
	if err := writeLease(leasePath, Lease{
		Kind: KindUnit, Owner: "w1", Generation: 7,
		Deadline: clk.Now().Add(time.Minute).UnixNano(), Unit: meta,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := dispatchTick(context.Background(), cfg, layout, clk.Now, metas, []bool{false}, &st, &counter, &res); err != nil {
		t.Fatal(err)
	}
	if res.Dispatched != 0 || counter != 7 {
		t.Fatalf("revived lease re-dispatched: res=%+v counter=%d", res, counter)
	}
	if !st.expiredSince[0].IsZero() {
		t.Error("expiry mark not cleared after revival")
	}
}

// TestExpiredLeaseRedispatchedWithBackoff: without a renewal, an expired
// lease is re-dispatched at a strictly higher generation, but only after
// the exponential backoff elapses.
func TestExpiredLeaseRedispatchedWithBackoff(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{Root: dir}
	if err := layout.Prepare(); err != nil {
		t.Fatal(err)
	}
	clk := newTestClock()
	plan := testPlan("Backoff", 1)
	meta := plan.Meta(0)
	store := openStore(t, layout.CheckpointDir())
	cfg := CoordinatorConfig{
		Dir: dir, ID: "coord", Plan: plan, Store: store,
		TTL: time.Minute, Poll: time.Second,
		BackoffBase: 10 * time.Second, MaxPerWorker: 2, Clock: clk.Now,
	}
	if err := writeLease(layout.WorkerLease("w1"), Lease{
		Kind: KindWorker, Owner: "w1", Deadline: clk.Now().Add(time.Hour).UnixNano(),
	}, nil); err != nil {
		t.Fatal(err)
	}
	leasePath := layout.UnitLease(meta.FileBase())
	if err := writeLease(leasePath, Lease{
		Kind: KindUnit, Owner: "w1", Generation: 3,
		Deadline: clk.Now().Add(-time.Second).UnixNano(), Unit: meta,
	}, nil); err != nil {
		t.Fatal(err)
	}

	st := coordState{issued: []uint64{3}, attempts: []int{1}, expiredSince: []time.Time{{}}}
	counter := uint64(3)
	var res CoordinatorResult
	metas := plan.Metas()
	tick := func() {
		t.Helper()
		if err := dispatchTick(context.Background(), cfg, layout, clk.Now, metas, []bool{false}, &st, &counter, &res); err != nil {
			t.Fatal(err)
		}
	}

	tick() // observes expiry, starts backoff
	if res.Dispatched != 0 {
		t.Fatalf("re-dispatched before backoff: %+v", res)
	}
	clk.Advance(5 * time.Second) // backoff(1) = 10s not yet elapsed
	tick()
	if res.Dispatched != 0 {
		t.Fatalf("re-dispatched mid-backoff: %+v", res)
	}
	clk.Advance(6 * time.Second) // 11s > 10s
	tick()
	if res.Dispatched != 1 || res.Redispatched != 1 {
		t.Fatalf("expected one re-dispatch: %+v", res)
	}
	l, ok, _ := readLease(leasePath)
	if !ok || l.Generation != 4 || l.Owner != "w1" {
		t.Fatalf("re-dispatched lease = %+v ok=%v, want gen 4", l, ok)
	}
	if st.attempts[0] != 2 {
		t.Errorf("attempts = %d, want 2", st.attempts[0])
	}
	// The second backoff is doubled: 20s.
	if got := cfg.backoff(2); got != 20*time.Second {
		t.Errorf("backoff(2) = %v, want 20s", got)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	cfg := CoordinatorConfig{BackoffBase: time.Second, BackoffMax: 10 * time.Second}
	wants := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 10 * time.Second, 10 * time.Second}
	for i, want := range wants {
		if got := cfg.backoff(i + 1); got != want {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
	// Defaults: base = Poll, max = 8*base.
	d := CoordinatorConfig{Poll: 50 * time.Millisecond}
	if got := d.backoff(1); got != 50*time.Millisecond {
		t.Errorf("default backoff(1) = %v", got)
	}
	if got := d.backoff(20); got != 400*time.Millisecond {
		t.Errorf("default backoff cap = %v, want 400ms", got)
	}
}

// flipLease is an inner hook that rewrites the unit's lease between the
// fence's BeforePut check and the write — the narrowest possible window for
// the revoked-straggler race.
type flipLease struct {
	path  string
	lease Lease
}

func (h flipLease) BeforePut(checkpoint.Meta) error {
	return writeLease(h.path, h.lease, nil)
}
func (h flipLease) AfterPut(checkpoint.Meta, string) {}

// TestFencedPutRefused: a straggler whose lease was already re-issued is
// vetoed before writing anything.
func TestFencedPutRefused(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{Root: dir}
	if err := layout.Prepare(); err != nil {
		t.Fatal(err)
	}
	plan := testPlan("Fence", 1)
	meta := plan.Meta(0)
	leasePath := layout.UnitLease(meta.FileBase())
	store := openStore(t, layout.CheckpointDir())

	// The lease on disk is generation 9 for another worker.
	if err := writeLease(leasePath, Lease{Kind: KindUnit, Owner: "other", Generation: 9, Deadline: 1 << 62, Unit: meta}, nil); err != nil {
		t.Fatal(err)
	}
	fence := &fenceHooks{store: store}
	store.Hooks = fence
	fence.arm(leasePath, "straggler", 7)

	err := store.Put(meta, testPayload("Fence", 0))
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced put: err = %v, want ErrFenced", err)
	}
	if !fence.Fenced() {
		t.Error("Fenced() = false after veto")
	}
	if _, err := os.Stat(store.Path(meta)); !errors.Is(err, os.ErrNotExist) {
		t.Error("vetoed put left a checkpoint file")
	}
}

// TestFencedPutDiscardedMidWrite: the lease flips while the write is in
// flight; with no prior checkpoint the late write must be removed.
func TestFencedPutDiscardedMidWrite(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{Root: dir}
	if err := layout.Prepare(); err != nil {
		t.Fatal(err)
	}
	plan := testPlan("Fence", 1)
	meta := plan.Meta(0)
	leasePath := layout.UnitLease(meta.FileBase())
	store := openStore(t, layout.CheckpointDir())

	if err := writeLease(leasePath, Lease{Kind: KindUnit, Owner: "straggler", Generation: 7, Deadline: 1 << 62, Unit: meta}, nil); err != nil {
		t.Fatal(err)
	}
	fence := &fenceHooks{
		store: store,
		inner: flipLease{path: leasePath, lease: Lease{Kind: KindUnit, Owner: "other", Generation: 9, Deadline: 1 << 62, Unit: meta}},
	}
	store.Hooks = fence
	fence.arm(leasePath, "straggler", 7)

	if err := store.Put(meta, testPayload("Fence", 0)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if !fence.Fenced() {
		t.Fatal("mid-write fence not detected")
	}
	if _, err := os.Stat(store.Path(meta)); !errors.Is(err, os.ErrNotExist) {
		t.Error("late write not discarded")
	}
}

// TestFencedPutAcceptedIffByteIdentical: the same mid-write fence, but the
// store already holds the byte-identical checkpoint — the write is
// accepted (it changed nothing), and a *different*-bytes late write is
// rolled back to the published frame.
func TestFencedPutAcceptedIffByteIdentical(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{Root: dir}
	if err := layout.Prepare(); err != nil {
		t.Fatal(err)
	}
	plan := testPlan("Fence", 1)
	meta := plan.Meta(0)
	leasePath := layout.UnitLease(meta.FileBase())
	store := openStore(t, layout.CheckpointDir())

	// Publish the canonical frame first (no fencing).
	if err := store.Put(meta, testPayload("Fence", 0)); err != nil {
		t.Fatal(err)
	}
	published, err := os.ReadFile(store.Path(meta))
	if err != nil {
		t.Fatal(err)
	}

	if err := writeLease(leasePath, Lease{Kind: KindUnit, Owner: "straggler", Generation: 7, Deadline: 1 << 62, Unit: meta}, nil); err != nil {
		t.Fatal(err)
	}
	fence := &fenceHooks{
		store: store,
		inner: flipLease{path: leasePath, lease: Lease{Kind: KindUnit, Owner: "other", Generation: 9, Deadline: 1 << 62, Unit: meta}},
	}
	store.Hooks = fence

	// Identical bytes: accepted.
	fence.arm(leasePath, "straggler", 7)
	if err := store.Put(meta, testPayload("Fence", 0)); err != nil {
		t.Fatalf("identical fenced put: %v", err)
	}
	got, _ := os.ReadFile(store.Path(meta))
	if !bytes.Equal(got, published) {
		t.Error("identical fenced put changed the published frame")
	}

	// Different bytes (a buggy straggler): rolled back to the published
	// frame, not merged.
	if err := writeLease(leasePath, Lease{Kind: KindUnit, Owner: "straggler", Generation: 7, Deadline: 1 << 62, Unit: meta}, nil); err != nil {
		t.Fatal(err)
	}
	fence.arm(leasePath, "straggler", 7)
	if err := store.Put(meta, []byte("divergent result")); err != nil {
		t.Fatalf("divergent fenced put: %v", err)
	}
	if !fence.Fenced() {
		t.Fatal("divergent fenced put not detected")
	}
	got, _ = os.ReadFile(store.Path(meta))
	if !bytes.Equal(got, published) {
		t.Error("divergent late write survived; published frame not restored")
	}
}

// TestPurityViolationDetected: overwriting a verified checkpoint with
// different verified bytes, while still holding the lease, is a loud error.
func TestPurityViolationDetected(t *testing.T) {
	store := openStore(t, t.TempDir())
	plan := testPlan("Pure", 1)
	meta := plan.Meta(0)
	fence := &fenceHooks{store: store}
	store.Hooks = fence

	fence.arm("", "", 0) // no lease: solo-style put, purity check only
	if err := store.Put(meta, testPayload("Pure", 0)); err != nil {
		t.Fatal(err)
	}
	if v := fence.Violation(); v != nil {
		t.Fatalf("first put flagged: %v", v)
	}
	if err := store.Put(meta, testPayload("Pure", 0)); err != nil {
		t.Fatal(err)
	}
	if v := fence.Violation(); v != nil {
		t.Fatalf("identical overwrite flagged: %v", v)
	}
	if err := store.Put(meta, []byte("different bytes")); err != nil {
		t.Fatal(err)
	}
	if v := fence.Violation(); !errors.Is(v, ErrPurity) {
		t.Fatalf("divergent overwrite: violation = %v, want ErrPurity", v)
	}
}

// TestStaleClobberRedispatch: a stale straggler renewal overwrites a
// higher-generation lease (last-writer-wins on the filesystem). The
// coordinator's issued[] watermark detects the regression and re-issues
// above its counter.
func TestStaleClobberRedispatch(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{Root: dir}
	if err := layout.Prepare(); err != nil {
		t.Fatal(err)
	}
	clk := newTestClock()
	plan := testPlan("Clobber", 1)
	meta := plan.Meta(0)
	store := openStore(t, layout.CheckpointDir())
	cfg := CoordinatorConfig{
		Dir: dir, ID: "coord", Plan: plan, Store: store,
		TTL: time.Minute, Poll: time.Second,
		BackoffBase: 10 * time.Second, MaxPerWorker: 2, Clock: clk.Now,
	}
	if err := writeLease(layout.WorkerLease("w1"), Lease{
		Kind: KindWorker, Owner: "w1", Deadline: clk.Now().Add(time.Hour).UnixNano(),
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Coordinator issued generation 8; a stale gen-5 renewal clobbered it
	// with a fresh deadline.
	leasePath := layout.UnitLease(meta.FileBase())
	if err := writeLease(leasePath, Lease{
		Kind: KindUnit, Owner: "dead-worker", Generation: 5,
		Deadline: clk.Now().Add(time.Minute).UnixNano(), Unit: meta,
	}, nil); err != nil {
		t.Fatal(err)
	}
	st := coordState{issued: []uint64{8}, attempts: []int{2}, expiredSince: []time.Time{{}}}
	counter := uint64(8)
	var res CoordinatorResult
	// Tick 1 observes the generation regression (clobbered lease is treated
	// as dead even though its deadline is fresh); tick 2, after backoff(2) =
	// 20s elapses, re-issues above the watermark.
	if err := dispatchTick(context.Background(), cfg, layout, clk.Now, plan.Metas(), []bool{false}, &st, &counter, &res); err != nil {
		t.Fatal(err)
	}
	if res.Dispatched != 0 {
		t.Fatalf("clobbered lease re-dispatched before backoff: %+v", res)
	}
	clk.Advance(21 * time.Second)
	if err := dispatchTick(context.Background(), cfg, layout, clk.Now, plan.Metas(), []bool{false}, &st, &counter, &res); err != nil {
		t.Fatal(err)
	}
	l, ok, _ := readLease(leasePath)
	if !ok || l.Generation != 9 {
		t.Fatalf("clobbered lease not re-issued: %+v ok=%v, want gen 9", l, ok)
	}
}

// TestAbortedUnitsDispatchFirst: units with aborted markers jump the queue.
func TestAbortedUnitsDispatchFirst(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{Root: dir}
	if err := layout.Prepare(); err != nil {
		t.Fatal(err)
	}
	clk := newTestClock()
	plan := testPlan("Abort", 4)
	store := openStore(t, layout.CheckpointDir())
	cfg := CoordinatorConfig{
		Dir: dir, ID: "coord", Plan: plan, Store: store,
		TTL: time.Minute, Poll: time.Second, MaxPerWorker: 1, Clock: clk.Now,
	}
	if err := writeLease(layout.WorkerLease("w1"), Lease{
		Kind: KindWorker, Owner: "w1", Deadline: clk.Now().Add(time.Hour).UnixNano(),
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Unit 2 was in flight when its worker was hard-killed.
	tracker := NewInFlight("dead")
	tracker.Observe(plan.Meta(2), false)
	tracker.WriteAborted(store.Dir())

	st := coordState{issued: make([]uint64, 4), attempts: make([]int, 4), expiredSince: make([]time.Time, 4)}
	counter := uint64(0)
	var res CoordinatorResult
	// With MaxPerWorker=1 only one unit can be dispatched this tick; it
	// must be the aborted one, not unit 0.
	if err := dispatchTick(context.Background(), cfg, layout, clk.Now, plan.Metas(), make([]bool, 4), &st, &counter, &res); err != nil {
		t.Fatal(err)
	}
	if res.Dispatched != 1 || res.AbortedFirst != 1 {
		t.Fatalf("res = %+v, want exactly the aborted unit dispatched", res)
	}
	l, ok, _ := readLease(layout.UnitLease(plan.Meta(2).FileBase()))
	if !ok || l.Owner != "w1" {
		t.Fatalf("aborted unit 2 not leased first: %+v ok=%v", l, ok)
	}
}

// TestWorkerRefusesForeignLease: a lease whose unit identity does not match
// the worker's plan (different config hash) is never claimed.
func TestWorkerRefusesForeignLease(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{Root: dir}
	if err := layout.Prepare(); err != nil {
		t.Fatal(err)
	}
	plan := testPlan("Foreign", 2)
	store := openStore(t, layout.CheckpointDir())
	foreign := plan.Meta(0)
	foreign.ConfigHash ^= 0xff // someone else's run
	if err := writeLease(layout.UnitLease(foreign.FileBase()), Lease{
		Kind: KindUnit, Owner: "w1", Generation: 1, Deadline: 1 << 62, Unit: foreign,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := claimable(layout, plan, "w1", store); err != nil || ok {
		t.Fatalf("foreign lease claimed: ok=%v err=%v", ok, err)
	}
	// The matching identity is claimable.
	if err := writeLease(layout.UnitLease(plan.Meta(1).FileBase()), Lease{
		Kind: KindUnit, Owner: "w1", Generation: 2, Deadline: 1 << 62, Unit: plan.Meta(1),
	}, nil); err != nil {
		t.Fatal(err)
	}
	idx, l, ok, err := claimable(layout, plan, "w1", store)
	if err != nil || !ok || idx != 1 || l.Generation != 2 {
		t.Fatalf("own lease not claimed: idx=%d l=%+v ok=%v err=%v", idx, l, ok, err)
	}
}

// TestEndToEndInProcess runs a coordinator and two workers as goroutines
// over one fabric dir and checks the store ends up byte-identical to a
// solo run of the same plan.
func TestEndToEndInProcess(t *testing.T) {
	const units = 6
	plan := testPlan("E2E", units)

	// Solo reference run.
	soloDir := t.TempDir()
	solo := openStore(t, soloDir)
	for i := 0; i < units; i++ {
		if err := plan.RunUnit(context.Background(), i, solo); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	layout := Layout{Root: dir}
	clk := newTestClock()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	workerErr := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, workerErr[w] = RunWorker(ctx, WorkerConfig{
				Dir: dir, ID: fmt.Sprintf("w%d", w), Plan: plan,
				Store: openStore(t, layout.CheckpointDir()),
				TTL:   time.Minute, Poll: 5 * time.Millisecond, Clock: clk.Now,
			})
		}(w)
	}
	res, err := RunCoordinator(ctx, CoordinatorConfig{
		Dir: dir, ID: "coord", Plan: plan,
		Store: openStore(t, layout.CheckpointDir()),
		TTL:   time.Minute, Poll: 5 * time.Millisecond, Clock: clk.Now,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()
	for w, err := range workerErr {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if res.Dispatched < units {
		t.Errorf("dispatched %d < %d units", res.Dispatched, units)
	}
	if !layout.Done() {
		t.Error("done marker missing")
	}

	// Byte-identical store.
	fabricStore := openStore(t, layout.CheckpointDir())
	for i := 0; i < units; i++ {
		m := plan.Meta(i)
		want, err := os.ReadFile(solo.Path(m))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(fabricStore.Path(m))
		if err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("unit %d: fabric checkpoint differs from solo run", i)
		}
	}
	// Completed units' leases were cleaned up.
	for i := 0; i < units; i++ {
		if _, err := os.Stat(layout.UnitLease(plan.Meta(i).FileBase())); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("unit %d lease not cleaned up", i)
		}
	}
}

// TestJoinMergesPartialRuns: two disjoint (plus overlapping) partial stores
// join into a store byte-identical to a full run; a same-identity
// different-bytes conflict aborts.
func TestJoinMergesPartialRuns(t *testing.T) {
	const units = 4
	plan := testPlan("Join", units)

	full := openStore(t, t.TempDir())
	for i := 0; i < units; i++ {
		if err := plan.RunUnit(context.Background(), i, full); err != nil {
			t.Fatal(err)
		}
	}

	// Partial run A has units 0..2, partial run B has 2..3 (unit 2 overlaps).
	dirA, dirB := t.TempDir(), t.TempDir()
	a, b := openStore(t, dirA), openStore(t, dirB)
	for i := 0; i <= 2; i++ {
		if err := plan.RunUnit(context.Background(), i, a); err != nil {
			t.Fatal(err)
		}
	}
	for i := 2; i < units; i++ {
		if err := plan.RunUnit(context.Background(), i, b); err != nil {
			t.Fatal(err)
		}
	}
	// A torn file in B must be skipped, not adopted.
	if err := os.WriteFile(filepath.Join(dirB, "torn.ckpt"), []byte("shred"), 0o644); err != nil {
		t.Fatal(err)
	}

	dst := openStore(t, t.TempDir())
	rep, err := Join(dst, []string{dirA, dirB})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if rep.Adopted != units || rep.AlreadyPresent != 1 || rep.TornSkipped != 1 {
		t.Errorf("report = %+v, want %d adopted, 1 already present, 1 torn skipped", rep, units)
	}
	for i := 0; i < units; i++ {
		m := plan.Meta(i)
		want, _ := os.ReadFile(full.Path(m))
		got, err := os.ReadFile(dst.Path(m))
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("unit %d: joined store differs from full run (err=%v)", i, err)
		}
	}

	// Conflict: same identity, different verified bytes.
	evil := openStore(t, t.TempDir())
	if err := evil.Put(plan.Meta(0), []byte("divergent")); err != nil {
		t.Fatal(err)
	}
	if _, err := Join(dst, []string{evil.Dir()}); err == nil {
		t.Fatal("conflicting join did not fail")
	}

	// A fabric root resolves to its ckpt/ subdirectory.
	fabDir := t.TempDir()
	fl := Layout{Root: fabDir}
	if err := fl.Prepare(); err != nil {
		t.Fatal(err)
	}
	fs := openStore(t, fl.CheckpointDir())
	if err := plan.RunUnit(context.Background(), 0, fs); err != nil {
		t.Fatal(err)
	}
	dst2 := openStore(t, t.TempDir())
	rep, err = Join(dst2, []string{fabDir})
	if err != nil || rep.Adopted != 1 {
		t.Fatalf("fabric-root join: rep=%+v err=%v", rep, err)
	}
}

// TestAbortedMarkerLifecycle covers WriteAborted/ScanAborted/ClearAborted.
func TestAbortedMarkerLifecycle(t *testing.T) {
	storeDir := t.TempDir()
	plan := testPlan("Markers", 3)
	tr := NewInFlight("w9")
	tr.Observe(plan.Meta(1), false)
	tr.Observe(plan.Meta(2), false)
	tr.Observe(plan.Meta(2), true) // finished before the kill
	tr.WriteAborted(storeDir)

	got := ScanAborted(storeDir)
	if len(got) != 1 || got[0] != plan.Meta(1) {
		t.Fatalf("ScanAborted = %+v, want exactly unit 1", got)
	}
	// Torn markers are skipped.
	if err := os.WriteFile(filepath.Join(AbortDir(storeDir), "torn.aborted"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := ScanAborted(storeDir); len(got) != 1 {
		t.Fatalf("torn marker not skipped: %+v", got)
	}
	ClearAborted(storeDir, plan.Meta(1))
	if got := ScanAborted(storeDir); len(got) != 0 {
		t.Fatalf("marker not cleared: %+v", got)
	}
}
