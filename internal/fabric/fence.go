package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"os"

	"randfill/internal/atomicio"
	"randfill/internal/checkpoint"
)

// ErrFenced reports a checkpoint write refused or discarded because the
// writer's lease generation is no longer current — the coordinator revoked
// the lease and re-dispatched the unit. Fencing costs the straggler its
// work; it never costs the run correctness.
var ErrFenced = errors.New("fabric: lease lost (generation fenced)")

// ErrPurity reports two verifying checkpoints with the same identity but
// different bytes. Work units are pure functions of their Meta, so this can
// only mean CRC-colliding corruption or a broken determinism contract —
// either way the run must stop rather than merge a guess.
var ErrPurity = errors.New("fabric: same-identity checkpoints with different bytes (purity violation)")

// fenceHooks wraps a checkpoint store's Hooks with generation fencing for
// one worker. Before each Put it verifies the worker still holds the unit's
// lease; after each Put it re-checks and, if the lease was lost mid-write,
// discards the write — or accepts it iff it is byte-identical to what the
// store already held. It also cross-checks every overwrite of a verifying
// checkpoint for byte-identity, turning silent purity violations into loud
// errors.
//
// A worker runs one unit at a time, so the per-unit fields are plain; the
// worker calls arm() before each unit's Put.
type fenceHooks struct {
	inner checkpoint.Hooks
	store *checkpoint.Store

	// Per-unit arming.
	leasePath string
	owner     string
	gen       uint64

	// Per-put state.
	stash    []byte // pre-put file bytes (nil if absent)
	stashOK  bool   // stash verifies as a checkpoint frame
	fenced   bool
	violated error
}

var _ checkpoint.Hooks = (*fenceHooks)(nil)

// arm points the hooks at the lease guarding the next Put.
func (f *fenceHooks) arm(leasePath, owner string, gen uint64) {
	f.leasePath, f.owner, f.gen = leasePath, owner, gen
	f.fenced, f.violated = false, nil
}

// holds reports whether the armed lease is still this worker's at this
// generation. A torn or absent lease does not veto: the checkpoint frame's
// own CRC plus the byte-identity rule still guarantee correctness, and
// refusing on a torn lease would turn best-effort damage into lost work.
func (f *fenceHooks) holds() bool {
	l, ok, err := readLease(f.leasePath)
	if err != nil || !ok {
		return true
	}
	return l.Kind == KindUnit && l.Owner == f.owner && l.Generation == f.gen
}

func (f *fenceHooks) BeforePut(m checkpoint.Meta) error {
	f.stash, f.stashOK = nil, false
	if data, err := os.ReadFile(f.store.Path(m)); err == nil {
		f.stash = data
		_, f.stashOK = checkpoint.Verify(data)
	}
	if f.leasePath != "" && !f.holds() {
		f.fenced = true
		return ErrFenced
	}
	if f.inner != nil {
		return f.inner.BeforePut(m)
	}
	return nil
}

func (f *fenceHooks) AfterPut(m checkpoint.Meta, path string) {
	if f.inner != nil {
		// Fault hooks run first: a kill-after-puts plan exits here, exactly
		// as it would without fencing.
		f.inner.AfterPut(m, path)
	}
	cur, err := os.ReadFile(path)
	if err != nil {
		return
	}
	_, curOK := checkpoint.Verify(cur)

	if f.leasePath != "" && !f.holds() {
		// The lease was lost while the write was in flight.
		f.fenced = true
		switch {
		case f.stashOK && bytes.Equal(f.stash, cur):
			// Byte-identical to the checkpoint that was already published:
			// the write is accepted (it changed nothing).
		case f.stashOK:
			// Restore the prior verified checkpoint; our late write is
			// discarded. Best-effort: a failed restore leaves our verified
			// frame, which the purity rule still validates.
			_ = atomicio.WriteFile(path, f.stash, 0o644)
		default:
			// No prior checkpoint to preserve: discard ours so the unit's
			// rightful owner publishes the recorded result. Best-effort: a
			// surviving frame is still CRC-valid and byte-identical by purity.
			_ = os.Remove(path)
		}
		return
	}

	// Still the rightful owner: if we overwrote a verifying checkpoint with
	// different verifying bytes, the purity contract is broken.
	if f.stashOK && curOK && !bytes.Equal(f.stash, cur) {
		f.violated = fmt.Errorf("%w: %s shard %d", ErrPurity, m.Experiment, m.Shard)
	}
}

// Fenced reports whether the last Put was refused or discarded by fencing.
func (f *fenceHooks) Fenced() bool { return f.fenced }

// Violation returns the purity error detected on the last Put, if any.
func (f *fenceHooks) Violation() error { return f.violated }
