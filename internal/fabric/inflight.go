package fabric

import (
	"os"
	"path/filepath"
	"sort"
	"sync"

	"randfill/internal/checkpoint"
)

// AbortDir is where best-effort aborted-unit markers live, as a
// subdirectory of the checkpoint store so solo runs (-checkpoint-dir) and
// fabric runs (F/ckpt) share one location.
func AbortDir(storeDir string) string { return filepath.Join(storeDir, "aborted") }

// abortPath is the marker file for one unit.
func abortPath(storeDir string, m checkpoint.Meta) string {
	return filepath.Join(AbortDir(storeDir), m.FileBase()+".aborted")
}

// InFlight tracks the units a process is currently executing, so a
// hard-kill path (second signal) can leave best-effort aborted markers
// behind. A resuming coordinator dispatches marked units first: they are
// the ones a dead process already sank time into.
type InFlight struct {
	mu    sync.Mutex
	owner string
	units map[checkpoint.Meta]struct{}
}

// NewInFlight returns a tracker stamping markers with owner's id.
func NewInFlight(owner string) *InFlight {
	return &InFlight{owner: owner, units: make(map[checkpoint.Meta]struct{})}
}

// Observe records a unit starting (done=false) or durably finishing
// (done=true). Its signature matches the experiment layer's Scale.Track
// hook, so the same tracker serves solo runs and fabric workers.
func (f *InFlight) Observe(m checkpoint.Meta, done bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if done {
		delete(f.units, m)
	} else {
		f.units[m] = struct{}{}
	}
}

// Snapshot returns the currently in-flight units in deterministic
// (FileBase) order.
func (f *InFlight) Snapshot() []checkpoint.Meta {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]checkpoint.Meta, 0, len(f.units))
	for m := range f.units {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FileBase() < out[j].FileBase() })
	return out
}

// WriteAborted leaves one marker per in-flight unit under the store
// directory. It is called from a hard-kill path, so it is strictly
// best-effort: every error is swallowed — a missing marker only costs
// scheduling priority, never correctness.
func (f *InFlight) WriteAborted(storeDir string) {
	if storeDir == "" {
		return
	}
	// MkdirAll rather than assuming Prepare ran: solo runs create only the
	// checkpoint dir.
	if err := os.MkdirAll(AbortDir(storeDir), 0o755); err != nil {
		return
	}
	for _, m := range f.Snapshot() {
		// Best-effort marker on the hard-kill path; a lost marker only costs
		// dispatch priority.
		_ = writeLease(abortPath(storeDir, m), Lease{Kind: KindAborted, Owner: f.owner, Unit: m}, nil)
	}
}

// ScanAborted lists the units with aborted markers under storeDir, in
// sorted file order. Torn or corrupt markers are skipped (they were
// best-effort to begin with).
func ScanAborted(storeDir string) []checkpoint.Meta {
	names, err := filepath.Glob(filepath.Join(AbortDir(storeDir), "*.aborted"))
	if err != nil {
		return nil
	}
	sort.Strings(names)
	var out []checkpoint.Meta
	for _, name := range names {
		l, ok, err := readLease(name)
		if err != nil || !ok || l.Kind != KindAborted {
			continue
		}
		out = append(out, l.Unit)
	}
	return out
}

// ClearAborted removes the marker for a unit once it has a verified
// checkpoint. Best effort: a leftover marker only re-prioritizes a unit
// the completion scan already filters out.
func ClearAborted(storeDir string, m checkpoint.Meta) {
	//lint:ignore errcheck-io best-effort cleanup; a stale marker is filtered by the completion scan
	os.Remove(abortPath(storeDir, m))
}
