package fabric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"randfill/internal/atomicio"
	"randfill/internal/checkpoint"
)

// ErrCoordinatorHeld reports that another coordinator holds a live lease on
// the fabric directory; the second coordinator must refuse to start (exit
// code 5 in cmd/experiments) rather than race dispatch decisions.
var ErrCoordinatorHeld = errors.New("fabric: another coordinator holds a live lease")

// CoordinatorConfig configures the single dispatching coordinator.
type CoordinatorConfig struct {
	// Dir is the fabric root directory.
	Dir string
	// ID is this coordinator's id (lease owner string).
	ID string
	// Plan enumerates the experiment's units.
	Plan Plan
	// Store is the shared checkpoint store on Layout.CheckpointDir.
	Store *checkpoint.Store
	// TTL is the lease duration granted to units and to the coordinator's
	// own lease.
	TTL time.Duration
	// Poll is the scan interval.
	Poll time.Duration
	// BackoffBase is the first re-dispatch delay after an observed expiry;
	// it doubles per attempt up to BackoffMax. Zero defaults to Poll.
	BackoffBase time.Duration
	// BackoffMax caps the re-dispatch delay. Zero defaults to 8*BackoffBase.
	BackoffMax time.Duration
	// MaxPerWorker caps outstanding leases per live worker. Zero means 2.
	MaxPerWorker int
	// Clock supplies wall-clock reads; nil means SystemClock.
	Clock Clock
	// AfterLeaseWrite runs after each dispatched lease becomes visible
	// (torn-lease fault hook).
	AfterLeaseWrite func(path string)
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// CoordinatorResult summarizes a coordinator run.
type CoordinatorResult struct {
	// Epoch is the coordinator generation this run fenced itself into.
	Epoch uint64
	// Dispatched counts lease grants, including re-dispatches.
	Dispatched int
	// Redispatched counts grants beyond a unit's first.
	Redispatched int
	// AbortedFirst counts units dispatched early due to aborted markers.
	AbortedFirst int
}

func (c CoordinatorConfig) clock() Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return SystemClock()
}

func (c CoordinatorConfig) backoff(attempts int) time.Duration {
	base := c.BackoffBase
	if base <= 0 {
		base = c.Poll
	}
	max := c.BackoffMax
	if max <= 0 {
		max = 8 * base
	}
	d := base
	for i := 1; i < attempts && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

func (c CoordinatorConfig) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, "coordinator %s: "+format+"\n", append([]any{c.ID}, args...)...)
	}
}

// coordState is the coordinator's in-memory dispatch bookkeeping. It is
// advisory: a restarted coordinator rebuilds what it needs from the lease
// files, and anything it cannot rebuild (per-unit attempt counts) only
// weakens backoff, never correctness.
type coordState struct {
	issued       []uint64    // highest generation this coordinator issued per unit
	attempts     []int       // dispatch count per unit
	expiredSince []time.Time // first tick the current lease was seen expired
}

// RunCoordinator acquires the coordinator lease (fencing any expired
// predecessor, refusing a live one with ErrCoordinatorHeld), dispatches
// unit leases to live workers until every unit has a verified checkpoint,
// then writes the done marker. On context cancellation it returns ctx.Err()
// with all leases left in place for a successor.
func RunCoordinator(ctx context.Context, cfg CoordinatorConfig) (CoordinatorResult, error) {
	var res CoordinatorResult
	if cfg.TTL <= 0 || cfg.Poll <= 0 {
		return res, errors.New("fabric: coordinator needs positive TTL and Poll")
	}
	if cfg.MaxPerWorker <= 0 {
		cfg.MaxPerWorker = 2
	}
	layout := Layout{Root: cfg.Dir}
	if err := layout.Prepare(); err != nil {
		return res, err
	}
	clock := cfg.clock()

	epoch, counter, err := acquireCoordinator(layout, cfg, clock)
	if err != nil {
		return res, err
	}
	res.Epoch = epoch
	cfg.logf("acquired fabric %s at epoch %d (generation counter %d)", cfg.Dir, epoch, counter)

	metas := cfg.Plan.Metas()
	st := coordState{
		issued:       make([]uint64, len(metas)),
		attempts:     make([]int, len(metas)),
		expiredSince: make([]time.Time, len(metas)),
	}
	// A fresh coordinator must never issue a generation at or below one a
	// predecessor issued: start the counter above every surviving lease.
	for i, m := range metas {
		if l, ok, _ := readLease(layout.UnitLease(m.FileBase())); ok && l.Kind == KindUnit {
			st.issued[i] = l.Generation
			if l.Generation > counter {
				counter = l.Generation
			}
			st.attempts[i] = 1 // unknown true count; backoff starts at base
		}
	}

	var lastRenew time.Time
	renewCoordinator := func() error {
		now := clock()
		if !lastRenew.IsZero() && now.Sub(lastRenew) < cfg.TTL/3 {
			return nil
		}
		// Persist the counter on every renewal so a takeover continues the
		// generation sequence instead of restarting it.
		if err := writeLease(layout.CoordinatorLease(), Lease{
			Kind: KindCoordinator, Owner: cfg.ID, Generation: epoch,
			Deadline: now.Add(cfg.TTL).UnixNano(), Counter: counter,
		}, nil); err != nil {
			return err
		}
		lastRenew = now
		return nil
	}

	for {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if err := renewCoordinator(); err != nil {
			return res, err
		}

		done, err := cfg.Store.Complete(metas)
		if err != nil {
			return res, err
		}
		remaining := 0
		for i, ok := range done {
			if !ok {
				remaining++
				continue
			}
			// Completed units need no lease or marker any longer.
			//lint:ignore errcheck-io best-effort cleanup of a completed unit's lease; a leftover lease is ignored once the checkpoint verifies
			os.Remove(layout.UnitLease(metas[i].FileBase()))
			ClearAborted(cfg.Store.Dir(), metas[i])
		}
		if remaining == 0 {
			if err := atomicio.WriteFile(layout.DonePath(), []byte("done\n"), 0o644); err != nil {
				return res, err
			}
			cfg.logf("all %d units checkpointed; done marker written", len(metas))
			return res, nil
		}

		if err := dispatchTick(ctx, cfg, layout, clock, metas, done, &st, &counter, &res); err != nil {
			return res, err
		}
		sleepCtx(ctx, cfg.Poll)
	}
}

// acquireCoordinator takes or takes over the coordinator lease. A live
// lease held by someone else yields ErrCoordinatorHeld; an expired or
// absent one is claimed at the next epoch with the predecessor's persisted
// generation counter carried forward.
func acquireCoordinator(layout Layout, cfg CoordinatorConfig, clock Clock) (epoch, counter uint64, err error) {
	prev, ok, err := readLease(layout.CoordinatorLease())
	if err != nil {
		return 0, 0, err
	}
	now := clock()
	if ok && prev.Kind == KindCoordinator {
		if prev.Owner != cfg.ID && !prev.Expired(now) {
			return 0, 0, fmt.Errorf("%w: %q until %s", ErrCoordinatorHeld,
				prev.Owner, time.Unix(0, prev.Deadline).UTC().Format(time.RFC3339))
		}
		epoch, counter = prev.Generation, prev.Counter
	}
	epoch++
	if err := writeLease(layout.CoordinatorLease(), Lease{
		Kind: KindCoordinator, Owner: cfg.ID, Generation: epoch,
		Deadline: now.Add(cfg.TTL).UnixNano(), Counter: counter,
	}, nil); err != nil {
		return 0, 0, err
	}
	// Read back: two starters racing past the liveness check serialize on
	// the atomic rename — the loser sees the winner's lease and refuses.
	cur, ok, err := readLease(layout.CoordinatorLease())
	if err != nil {
		return 0, 0, err
	}
	if !ok || cur.Owner != cfg.ID || cur.Generation != epoch {
		return 0, 0, fmt.Errorf("%w: lost acquisition race to %q", ErrCoordinatorHeld, cur.Owner)
	}
	return epoch, counter, nil
}

// dispatchTick runs one scan-and-dispatch pass.
func dispatchTick(ctx context.Context, cfg CoordinatorConfig, layout Layout, clock Clock, metas []checkpoint.Meta, done []bool, st *coordState, counter *uint64, res *CoordinatorResult) error {
	now := clock()
	workers, load, err := liveWorkers(layout, cfg.Plan, now)
	if err != nil {
		return err
	}
	if len(workers) == 0 {
		return nil
	}

	// Aborted markers promote their units to the front of the dispatch
	// order: a dead process already sank time into them.
	abortedSet := make(map[int]bool)
	for _, m := range ScanAborted(cfg.Store.Dir()) {
		if i := cfg.Plan.unitIndex(m); i >= 0 {
			abortedSet[i] = true
		}
	}
	order := make([]int, 0, len(metas))
	for i := range metas {
		if !done[i] && abortedSet[i] {
			order = append(order, i)
		}
	}
	for i := range metas {
		if !done[i] && !abortedSet[i] {
			order = append(order, i)
		}
	}

	for _, i := range order {
		if err := ctx.Err(); err != nil {
			return err
		}
		leasePath := layout.UnitLease(metas[i].FileBase())
		l, ok, err := readLease(leasePath)
		if err != nil {
			return err
		}
		live := ok && l.Kind == KindUnit && !l.Expired(now) && l.Generation >= st.issued[i]
		if live {
			st.expiredSince[i] = time.Time{}
			continue
		}
		// Absent, torn, expired, or clobbered by a stale lower-generation
		// renewal (the coordinator's issued[] watermark detects the last
		// case: the on-disk generation regressed below what it granted).
		if st.attempts[i] > 0 {
			if st.expiredSince[i].IsZero() {
				st.expiredSince[i] = now
			}
			if now.Sub(st.expiredSince[i]) < cfg.backoff(st.attempts[i]) {
				continue // exponential backoff before re-dispatch
			}
		}
		target := pickWorker(workers, load, cfg.MaxPerWorker)
		if target == "" {
			continue // every live worker is at capacity
		}
		*counter++
		if err := writeLease(leasePath, Lease{
			Kind: KindUnit, Owner: target, Generation: *counter,
			Deadline: now.Add(cfg.TTL).UnixNano(), Unit: metas[i],
		}, cfg.AfterLeaseWrite); err != nil {
			return err
		}
		st.issued[i] = *counter
		st.attempts[i]++
		st.expiredSince[i] = time.Time{}
		load[target]++
		res.Dispatched++
		if st.attempts[i] > 1 {
			res.Redispatched++
			cfg.logf("re-dispatched unit %d to %s (gen %d, attempt %d)", i, target, *counter, st.attempts[i])
		} else {
			cfg.logf("dispatched unit %d to %s (gen %d)", i, target, *counter)
		}
		if abortedSet[i] {
			res.AbortedFirst++
		}
	}
	return nil
}

// liveWorkers scans registration heartbeats and current unit leases,
// returning the sorted ids of unexpired workers and each one's outstanding
// lease count.
func liveWorkers(layout Layout, plan Plan, now time.Time) ([]string, map[string]int, error) {
	entries, err := os.ReadDir(layout.WorkerDir())
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	var ids []string
	for _, e := range entries {
		l, ok, err := readLease(layout.WorkerDir() + string(os.PathSeparator) + e.Name())
		if err != nil {
			return nil, nil, err
		}
		if ok && l.Kind == KindWorker && !l.Expired(now) {
			ids = append(ids, l.Owner)
		}
	}
	sort.Strings(ids)

	load := make(map[string]int, len(ids))
	for _, id := range ids {
		load[id] = 0
	}
	lentries, err := os.ReadDir(layout.LeaseDir())
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	for _, e := range lentries {
		l, ok, err := readLease(layout.UnitLease(trimLease(e.Name())))
		if err != nil {
			return nil, nil, err
		}
		if ok && l.Kind == KindUnit && !l.Expired(now) && plan.unitIndex(l.Unit) >= 0 {
			if _, live := load[l.Owner]; live {
				load[l.Owner]++
			}
		}
	}
	return ids, load, nil
}

// pickWorker returns the least-loaded live worker under the cap,
// lexicographically smallest id on ties (ids is sorted) — deterministic
// given the same scan, which keeps multi-process test runs reproducible in
// their scheduling decisions even though results never depend on them.
func pickWorker(ids []string, load map[string]int, cap int) string {
	best, bestLoad := "", cap
	for _, id := range ids {
		if load[id] < bestLoad {
			best, bestLoad = id, load[id]
		}
	}
	return best
}
