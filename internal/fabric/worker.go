package fabric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"randfill/internal/checkpoint"
)

// WorkerConfig configures one worker process (or in-process worker loop).
type WorkerConfig struct {
	// Dir is the fabric root directory.
	Dir string
	// ID is this worker's unique id (lease owner string).
	ID string
	// Plan enumerates and executes the experiment's units.
	Plan Plan
	// Store is the shared checkpoint store, opened on Layout.CheckpointDir.
	// Any hooks already installed (fault plans) keep running under fencing.
	Store *checkpoint.Store
	// TTL is the lease duration the fabric runs on; renewals happen every
	// TTL/3.
	TTL time.Duration
	// Poll is the idle re-scan interval.
	Poll time.Duration
	// IdleExit, when positive, makes the worker exit cleanly after going
	// that long without finding work and without a done marker (covers a
	// crashed coordinator).
	IdleExit time.Duration
	// Clock supplies wall-clock reads; nil means SystemClock. The
	// clock-skew fault substitutes SkewedClock.
	Clock Clock
	// Track, when non-nil, observes unit start/finish for aborted markers.
	Track *InFlight
	// BeforeUnit runs before the worker's n-th claimed unit executes
	// (1-based); the stall-worker fault sleeps here, before renewals start,
	// so the lease expires naturally.
	BeforeUnit func(n int)
	// AfterUnit runs after the worker's n-th completed unit (1-based); the
	// kill-worker fault exits the process here.
	AfterUnit func(n int)
	// AfterLeaseWrite runs after each lease renewal becomes visible; the
	// torn-lease fault damages the file here.
	AfterLeaseWrite func(path string)
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// WorkerResult summarizes a worker's run.
type WorkerResult struct {
	// Completed counts units this worker ran to a durable checkpoint.
	Completed int
	// Fenced counts units abandoned because the lease was revoked mid-run.
	Fenced int
	// Skipped counts claimed units that already had a verified checkpoint.
	Skipped int
}

func (c WorkerConfig) clock() Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return SystemClock()
}

func (c WorkerConfig) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, "worker %s: "+format+"\n", append([]any{c.ID}, args...)...)
	}
}

// RunWorker claims and executes unit leases addressed to cfg.ID until the
// done marker appears, the context is canceled, or the idle timeout fires.
// Fenced units are abandoned and counted, not fatal; a purity violation or
// unit error is fatal.
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerResult, error) {
	var res WorkerResult
	if cfg.TTL <= 0 || cfg.Poll <= 0 {
		return res, errors.New("fabric: worker needs positive TTL and Poll")
	}
	layout := Layout{Root: cfg.Dir}
	if err := layout.Prepare(); err != nil {
		return res, err
	}
	clock := cfg.clock()

	fence := &fenceHooks{inner: cfg.Store.Hooks, store: cfg.Store}
	cfg.Store.Hooks = fence
	defer func() { cfg.Store.Hooks = fence.inner }()

	heartbeat := func() error {
		now := clock()
		return writeLease(layout.WorkerLease(cfg.ID), Lease{
			Kind: KindWorker, Owner: cfg.ID,
			Deadline: now.Add(cfg.TTL).UnixNano(),
		}, cfg.AfterLeaseWrite)
	}

	var started int
	idleSince := clock()
	var lastBeat time.Time
	for {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		now := clock()
		if lastBeat.IsZero() || now.Sub(lastBeat) >= cfg.TTL/3 {
			if err := heartbeat(); err != nil {
				return res, err
			}
			lastBeat = now
		}
		if layout.Done() {
			cfg.logf("done marker present; exiting")
			return res, nil
		}

		idx, lease, ok, err := claimable(layout, cfg.Plan, cfg.ID, cfg.Store)
		if err != nil {
			return res, err
		}
		if !ok {
			if cfg.IdleExit > 0 && clock().Sub(idleSince) >= cfg.IdleExit {
				cfg.logf("idle for %v with no done marker; exiting", cfg.IdleExit)
				return res, nil
			}
			sleepCtx(ctx, cfg.Poll)
			continue
		}
		idleSince = clock()

		meta := cfg.Plan.Meta(idx)
		if _, ok, _ := cfg.Store.Get(meta); ok {
			// Checkpointed between the claim scan and here (a redundant
			// re-dispatch that another worker just finished): nothing to run.
			res.Skipped++
			sleepCtx(ctx, cfg.Poll)
			continue
		}

		started++
		if cfg.BeforeUnit != nil {
			cfg.BeforeUnit(started)
		}

		leasePath := layout.UnitLease(meta.FileBase())
		fence.arm(leasePath, cfg.ID, lease.Generation)
		runErr := runLeasedUnit(ctx, cfg, layout, clock, idx, meta, lease)
		fencedPut, violation := fence.Fenced(), fence.Violation()
		fence.arm("", "", 0)
		if violation != nil {
			return res, violation
		}
		switch {
		case fencedPut && runErr == nil:
			// The put itself was discarded by fencing even though RunUnit
			// returned success (an experiment layer that swallows the hook
			// error would land here); the unit is not ours to count.
			res.Fenced++
			cfg.logf("unit %d write fenced at generation %d", idx, lease.Generation)
		case runErr == nil:
			res.Completed++
			cfg.logf("unit %d complete (gen %d)", idx, lease.Generation)
			if cfg.AfterUnit != nil {
				cfg.AfterUnit(res.Completed)
			}
		case errors.Is(runErr, ErrFenced) || fencedPut:
			res.Fenced++
			cfg.logf("unit %d fenced at generation %d; abandoning", idx, lease.Generation)
		case ctx.Err() != nil:
			return res, ctx.Err()
		default:
			return res, fmt.Errorf("fabric: unit %d: %w", idx, runErr)
		}
	}
}

// claimable returns the lowest-indexed unit whose current lease names owner
// and whose unit identity belongs to plan. Foreign leases (another run's
// identities) are never claimed. Expired leases still count — renewing an
// expired-but-unreissued lease revives it (the expired-then-renewed race is
// resolved by generation, not by the deadline).
func claimable(layout Layout, plan Plan, owner string, store *checkpoint.Store) (int, Lease, bool, error) {
	entries, err := os.ReadDir(layout.LeaseDir())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, Lease{}, false, nil
		}
		return 0, Lease{}, false, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	best, bestIdx := Lease{}, -1
	for _, name := range names {
		l, ok, err := readLease(layout.UnitLease(trimLease(name)))
		if err != nil {
			return 0, Lease{}, false, err
		}
		if !ok || l.Kind != KindUnit || l.Owner != owner {
			continue
		}
		idx := plan.unitIndex(l.Unit)
		if idx < 0 {
			continue // foreign lease: refuse rather than guess
		}
		if _, present, _ := store.Get(l.Unit); present {
			continue // already checkpointed; the coordinator clears the lease
		}
		if bestIdx < 0 || idx < bestIdx {
			best, bestIdx = l, idx
		}
	}
	if bestIdx < 0 {
		return 0, Lease{}, false, nil
	}
	return bestIdx, best, true, nil
}

func trimLease(name string) string {
	const suffix = ".lease"
	if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
		return name[:len(name)-len(suffix)]
	}
	return name
}

// runLeasedUnit executes one unit under an active renewal loop. The unit's
// context is canceled the moment a renewal observes a different generation
// or owner, so a fenced straggler stops burning CPU promptly; its
// in-flight checkpoint write (if any) is handled by fenceHooks.
func runLeasedUnit(ctx context.Context, cfg WorkerConfig, layout Layout, clock Clock, idx int, meta checkpoint.Meta, lease Lease) error {
	leasePath := layout.UnitLease(meta.FileBase())

	// First renewal happens synchronously: if the dispatch lease aged while
	// we were scanning (or a stall fault slept in BeforeUnit), this either
	// revives it under our unchanged generation or detects the fence before
	// any work runs.
	renew := func() error {
		l, ok, err := readLease(leasePath)
		if err != nil {
			return err
		}
		if ok && (l.Owner != cfg.ID || l.Generation != lease.Generation || l.Kind != KindUnit) {
			return ErrFenced
		}
		// Absent (torn or raced) leases are rewritten under our generation;
		// if the coordinator meanwhile issued a higher one, its
		// stale-clobber rule stomps this write and the next renewal fences.
		next := lease
		next.Deadline = clock().Add(cfg.TTL).UnixNano()
		return writeLease(leasePath, next, cfg.AfterLeaseWrite)
	}
	if err := renew(); err != nil {
		return err
	}

	unitCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	stop := make(chan struct{})
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		t := time.NewTicker(cfg.TTL / 3)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-unitCtx.Done():
				return
			case <-t.C:
				if err := renew(); err != nil {
					cancel(err)
					return
				}
			}
		}
	}()

	if cfg.Track != nil {
		cfg.Track.Observe(meta, false)
		defer cfg.Track.Observe(meta, true)
	}
	err := cfg.Plan.RunUnit(unitCtx, idx, cfg.Store)
	close(stop)
	<-renewDone
	if err != nil {
		// A context cancellation caused by a fencing renewal surfaces as
		// the fence error, not a generic cancellation.
		if cause := context.Cause(unitCtx); cause != nil && errors.Is(cause, ErrFenced) {
			return ErrFenced
		}
		return err
	}
	return nil
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
