package fabric

import (
	"fmt"
	"os"

	"randfill/internal/checkpoint"
)

// JoinReport summarizes a Join.
type JoinReport struct {
	// Adopted counts frames copied into the destination store.
	Adopted int
	// AlreadyPresent counts frames the destination already held
	// byte-identically.
	AlreadyPresent int
	// TornSkipped counts source files skipped as torn/corrupt.
	TornSkipped int
}

// Join merges every complete checkpoint found in srcDirs into dst. Frames
// are adopted verbatim (verified, then byte-compared against any existing
// frame), so joining any set of partial runs of the same configuration
// reproduces exactly the store a single run would have written — and with
// it a byte-identical final table via the resume path. Two verifying
// frames with the same identity but different bytes abort the join: that
// is a purity violation, not something to merge silently.
//
// Source directories may be plain checkpoint dirs or fabric roots; a
// fabric root is resolved to its ckpt/ subdirectory automatically.
func Join(dst *checkpoint.Store, srcDirs []string) (JoinReport, error) {
	var rep JoinReport
	for _, dir := range srcDirs {
		dir = resolveStoreDir(dir)
		if _, err := os.Stat(dir); err != nil {
			return rep, fmt.Errorf("fabric: join source %s: %w", dir, err)
		}
		src, err := checkpoint.Open(dir)
		if err != nil {
			return rep, err
		}
		entries, err := src.Scan()
		if err != nil {
			return rep, err
		}
		for _, e := range entries {
			if e.State != checkpoint.ScanComplete {
				rep.TornSkipped++
				continue
			}
			data, err := os.ReadFile(e.Path)
			if err != nil {
				return rep, fmt.Errorf("fabric: join read %s: %w", e.Path, err)
			}
			_, result, err := dst.AdoptFrame(data)
			if err != nil {
				return rep, fmt.Errorf("fabric: join %s: %w", e.Path, err)
			}
			switch result {
			case checkpoint.Adopted:
				rep.Adopted++
			case checkpoint.AlreadyPresent:
				rep.AlreadyPresent++
			}
		}
	}
	return rep, nil
}

// resolveStoreDir maps a fabric root to its checkpoint subdirectory; a
// plain store directory passes through unchanged.
func resolveStoreDir(dir string) string {
	ckpt := Layout{Root: dir}.CheckpointDir()
	if fi, err := os.Stat(ckpt); err == nil && fi.IsDir() {
		return ckpt
	}
	return dir
}
