package fabric

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"randfill/internal/atomicio"
	"randfill/internal/checkpoint"
)

// leaseMagic opens every lease file; the trailing byte is the format
// version. The frame mirrors the checkpoint store's:
//
//	magic[8] | bodyLen uint32 LE | crc32(IEEE, body) uint32 LE | body
//
// body: kind byte | uvarint len + Owner | Generation u64 LE | Deadline
// (UnixNano) u64 LE | Counter u64 LE | unit identity (uvarint len +
// Experiment | uvarint Shard | Seed u64 | ConfigHash u64 | uvarint
// StreamVersion).
//
// A lease that fails magic, framing, or CRC verification reads as absent —
// the same torn-file discipline as checkpoints: the coordinator issues a
// fresh lease and the unit re-runs. Corruption costs work, never
// correctness.
var leaseMagic = [8]byte{'R', 'F', 'L', 'E', 'A', 'S', 'E', '1'}

// LeaseKind distinguishes the three lease-framed artifacts.
type LeaseKind byte

const (
	// KindUnit grants one work unit to one worker.
	KindUnit LeaseKind = 1
	// KindCoordinator is the coordinator's own lease over the fabric dir.
	KindCoordinator LeaseKind = 2
	// KindWorker is a worker's registration heartbeat.
	KindWorker LeaseKind = 3
	// KindAborted marks a unit that was in flight when its process was
	// hard-killed; coordinators re-dispatch these first.
	KindAborted LeaseKind = 4
)

// Lease is the decoded content of any lease-framed file.
type Lease struct {
	Kind LeaseKind
	// Owner is the holding process's id (worker id or coordinator id).
	Owner string
	// Generation fences stale holders: only the lease file's current
	// generation may renew or publish. The coordinator issues strictly
	// increasing generations across all units from its persisted Counter.
	Generation uint64
	// Deadline is the wall-clock instant (UnixNano) the lease expires if
	// not renewed.
	Deadline int64
	// Counter is the coordinator's next-generation watermark; meaningful
	// only on KindCoordinator leases, where it persists across takeovers.
	Counter uint64
	// Unit identifies the leased work unit; zero for non-unit kinds.
	Unit checkpoint.Meta
}

// Expired reports whether the lease's deadline has passed at now.
func (l Lease) Expired(now time.Time) bool { return now.UnixNano() > l.Deadline }

// encodeLease frames a lease for disk.
func encodeLease(l Lease) []byte {
	var body bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { body.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	putU64 := func(v uint64) {
		var u [8]byte
		binary.LittleEndian.PutUint64(u[:], v)
		body.Write(u[:])
	}
	body.WriteByte(byte(l.Kind))
	putUvarint(uint64(len(l.Owner)))
	body.WriteString(l.Owner)
	putU64(l.Generation)
	putU64(uint64(l.Deadline))
	putU64(l.Counter)
	putUvarint(uint64(len(l.Unit.Experiment)))
	body.WriteString(l.Unit.Experiment)
	putUvarint(uint64(l.Unit.Shard))
	putU64(l.Unit.Seed)
	putU64(l.Unit.ConfigHash)
	putUvarint(uint64(l.Unit.StreamVersion))

	out := make([]byte, 0, 16+body.Len())
	out = append(out, leaseMagic[:]...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(body.Len()))
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(body.Bytes()))
	out = append(out, u32[:]...)
	return append(out, body.Bytes()...)
}

// errTornLease is the generic verification failure; readers convert it to
// "absent" so the unit re-leases.
var errTornLease = errors.New("fabric: torn lease file")

// decodeLease verifies the frame and returns the lease.
func decodeLease(data []byte) (Lease, error) {
	var l Lease
	if len(data) < 16 || !bytes.Equal(data[:8], leaseMagic[:]) {
		return l, errTornLease
	}
	bodyLen := binary.LittleEndian.Uint32(data[8:12])
	sum := binary.LittleEndian.Uint32(data[12:16])
	body := data[16:]
	if uint32(len(body)) != bodyLen || crc32.ChecksumIEEE(body) != sum {
		return l, errTornLease
	}
	r := bytes.NewReader(body)
	kind, err := r.ReadByte()
	if err != nil {
		return l, errTornLease
	}
	l.Kind = LeaseKind(kind)
	readStr := func() (string, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil || n > uint64(r.Len()) {
			return "", errTornLease
		}
		b := make([]byte, n)
		if _, err := r.Read(b); err != nil {
			return "", errTornLease
		}
		return string(b), nil
	}
	readU64 := func() (uint64, error) {
		var u [8]byte
		if _, err := r.Read(u[:]); err != nil || r.Len() < 0 {
			return 0, errTornLease
		}
		return binary.LittleEndian.Uint64(u[:]), nil
	}
	if l.Owner, err = readStr(); err != nil {
		return l, err
	}
	if l.Generation, err = readU64(); err != nil {
		return l, err
	}
	dl, err := readU64()
	if err != nil {
		return l, err
	}
	l.Deadline = int64(dl)
	if l.Counter, err = readU64(); err != nil {
		return l, err
	}
	if l.Unit.Experiment, err = readStr(); err != nil {
		return l, err
	}
	shard, err := binary.ReadUvarint(r)
	if err != nil {
		return l, errTornLease
	}
	l.Unit.Shard = int(shard)
	if l.Unit.Seed, err = readU64(); err != nil {
		return l, err
	}
	if l.Unit.ConfigHash, err = readU64(); err != nil {
		return l, err
	}
	sv, err := binary.ReadUvarint(r)
	if err != nil {
		return l, errTornLease
	}
	l.Unit.StreamVersion = int(sv)
	return l, nil
}

// readLease loads and verifies path. ok is false when the file does not
// exist or is torn/corrupt — in both cases the lease is treated as absent.
// The error return is reserved for real I/O failures.
func readLease(path string) (Lease, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return Lease{}, false, nil
	}
	if err != nil {
		return Lease{}, false, fmt.Errorf("fabric: read lease %s: %w", path, err)
	}
	l, derr := decodeLease(data)
	if derr != nil {
		return Lease{}, false, nil // torn lease reads as absent
	}
	return l, true, nil
}

// writeLease atomically publishes a lease at path. afterWrite, when
// non-nil, runs once the file is visible — the torn-lease fault injects
// damage there, exactly like the checkpoint AfterPut hook.
func writeLease(path string, l Lease, afterWrite func(path string)) error {
	if err := atomicio.WriteFile(path, encodeLease(l), 0o644); err != nil {
		return fmt.Errorf("fabric: write lease: %w", err)
	}
	if afterWrite != nil {
		afterWrite(path)
	}
	return nil
}
