package fabric

import (
	"context"

	"randfill/internal/checkpoint"
)

// Plan is the type-erased description of one experiment's work units — the
// same fixed shard plan the in-process runShards driver executes, exposed
// so the coordinator can enumerate units and a worker can run exactly one.
// internal/experiments provides these (PlanFor); fabric never imports the
// experiment layer.
type Plan struct {
	// Name is the experiment name ("Figure2", "PolicyMatrix", ...).
	Name string
	// Units is the number of independent work units.
	Units int
	// Meta returns unit i's checkpoint identity. It must be a pure
	// function of the run configuration — every process in the fabric
	// derives the same identities or refuses foreign leases.
	Meta func(i int) checkpoint.Meta
	// RunUnit executes unit i and flushes its result through store (one
	// checkpoint Put). The result must be a pure function of the
	// configuration and i: that purity is what makes a re-dispatched or
	// double-executed unit byte-identical, and with it the whole fabric
	// crash-safe.
	RunUnit func(ctx context.Context, i int, store *checkpoint.Store) error
}

// Metas materializes every unit identity in index order.
func (p Plan) Metas() []checkpoint.Meta {
	out := make([]checkpoint.Meta, p.Units)
	for i := range out {
		out[i] = p.Meta(i)
	}
	return out
}

// unitIndex finds the unit whose identity matches m exactly; -1 when m is
// foreign to this plan (different experiment, config hash, or stream
// version — e.g. a lease written for another run sharing the directory).
func (p Plan) unitIndex(m checkpoint.Meta) int {
	if m.Shard < 0 || m.Shard >= p.Units {
		return -1
	}
	if p.Meta(m.Shard) != m {
		return -1
	}
	return m.Shard
}
