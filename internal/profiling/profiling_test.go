package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop() // must be safe with no profiles requested
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	heap := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, heap)
	if err != nil {
		t.Fatal(err)
	}
	work := 0
	for i := 0; i < 1000; i++ {
		work += i * i
	}
	_ = work
	stop()
	for _, p := range []string{cpu, heap} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartRejectsBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x.prof"), ""); err == nil {
		t.Error("unwritable cpu profile path accepted")
	}
}
