// Package profiling wires the standard pprof CPU and heap profiles into the
// CLIs (-cpuprofile/-memprofile). It exists so every command exposes the
// flags with identical semantics; see DESIGN.md §7 for the profiling
// workflow the flags support.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and arranges for a
// heap profile to be written to memPath (when non-empty). The returned stop
// function finalizes both and must be called once, before process exit;
// with both paths empty it is a no-op. Profile I/O errors after Start are
// reported on stderr by stop rather than returned, since by then the
// measured work has already run.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		// The CPU profile streams for the process lifetime; it cannot be
		// staged in a temp file and renamed like a result artifact.
		//lint:ignore atomicwrite pprof streams to the live file descriptor
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %v", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			return nil, fmt.Errorf("profiling: %v", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
		if memPath != "" {
			writeHeapProfile(memPath)
		}
	}, nil
}

func writeHeapProfile(path string) {
	// Best-effort debug artifact at process exit; errors are printed, not
	// returned, and a partial profile is still loadable by pprof.
	//lint:ignore atomicwrite diagnostic output, not a result artifact
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
		return
	}
	runtime.GC() // settle live-heap accounting before the snapshot
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
	}
}
