// Package modexp implements fixed-window modular exponentiation with a
// precomputed multiplier table — the public-key victim the paper names
// ("the multipliers table in the public-key algorithms (e.g., RSA) ...
// implemented as lookup tables indexed by a linear function of the secret
// key"). Each window of secret exponent bits indexes the table, so an
// attacker who learns which table entry was touched (Percival's attack)
// reads the exponent directly; the random fill window de-correlates the
// cache state from the index.
package modexp

import (
	"fmt"
	"math/big"

	"randfill/internal/mem"
)

// Recorder observes the secret-dependent multiplier-table lookups: index is
// the table entry (the window's exponent bits) and window counts windows
// from the most significant down.
type Recorder interface {
	Lookup(index, window int)
}

// Exponentiator computes base^x mod n by the fixed-window (2^w-ary) method.
type Exponentiator struct {
	w     uint
	mod   *big.Int
	table []*big.Int // table[i] = base^i mod n
}

// New precomputes the multiplier table for the given base and modulus with
// w-bit windows (w in 1..8; RSA implementations commonly use 4 or 5).
func New(base, mod *big.Int, w uint) (*Exponentiator, error) {
	if w < 1 || w > 8 {
		return nil, fmt.Errorf("modexp: window width %d out of 1..8", w)
	}
	if mod.Sign() <= 0 || mod.Cmp(big.NewInt(1)) == 0 {
		return nil, fmt.Errorf("modexp: invalid modulus")
	}
	e := &Exponentiator{w: w, mod: new(big.Int).Set(mod)}
	n := 1 << w
	e.table = make([]*big.Int, n)
	e.table[0] = big.NewInt(1)
	b := new(big.Int).Mod(base, mod)
	for i := 1; i < n; i++ {
		e.table[i] = new(big.Int).Mod(new(big.Int).Mul(e.table[i-1], b), mod)
	}
	return e, nil
}

// TableSize returns the number of multiplier-table entries (2^w).
func (e *Exponentiator) TableSize() int { return len(e.table) }

// Windows returns the number of w-bit windows an exponent of the given bit
// length decomposes into.
func (e *Exponentiator) Windows(bits int) int {
	return (bits + int(e.w) - 1) / int(e.w)
}

// Exp computes base^x mod n, reporting each multiplier-table lookup to rec
// (nil for none). Every window performs a lookup — including zero windows —
// as constant-*sequence* implementations do; the leakage is purely which
// entry is read. The exponent is the secret (its name does not match the
// taint heuristic, so it is declared explicitly):
//
//ctflow:secret x
func (e *Exponentiator) Exp(x *big.Int, rec Recorder) *big.Int {
	if x.Sign() < 0 {
		panic("modexp: negative exponent")
	}
	bits := x.BitLen()
	if bits == 0 {
		return big.NewInt(1)
	}
	nw := e.Windows(bits)
	acc := big.NewInt(1)
	for wi := nw - 1; wi >= 0; wi-- {
		// Square w times.
		for s := uint(0); s < e.w; s++ {
			acc.Mod(acc.Mul(acc, acc), e.mod)
		}
		idx := windowValue(x, wi, e.w)
		if rec != nil {
			rec.Lookup(idx, nw-1-wi)
		}
		acc.Mod(acc.Mul(acc, e.table[idx]), e.mod)
	}
	return acc
}

// windowValue extracts the wi-th w-bit window (window 0 = least
// significant) of x.
func windowValue(x *big.Int, wi int, w uint) int {
	v := 0
	for b := 0; b < int(w); b++ {
		bit := x.Bit(wi*int(w) + b)
		v |= int(bit) << b
	}
	return v
}

// Layout places the multiplier table in the simulated address space. Each
// entry spans EntryBytes bytes (the size of a modulus-width number), so the
// table covers TableSize * EntryBytes/LineSize cache lines.
type Layout struct {
	Table      mem.Addr
	EntryBytes int
}

// DefaultLayout places a 1024-bit (128-byte-entry) multiplier table.
func DefaultLayout() Layout {
	return Layout{Table: 0x300000, EntryBytes: 128}
}

// EntryLines returns the cache lines of table entry i.
func (l Layout) EntryLines(i int) []mem.Line {
	r := l.EntryRegion(i)
	return r.Lines()
}

// EntryRegion returns the memory region of table entry i.
func (l Layout) EntryRegion(i int) mem.Region {
	return mem.Region{Base: l.Table + mem.Addr(i*l.EntryBytes), Size: uint64(l.EntryBytes)}
}

// TableRegion returns the whole table's region for a 2^w-entry table.
func (l Layout) TableRegion(entries int) mem.Region {
	return mem.Region{Base: l.Table, Size: uint64(entries * l.EntryBytes)}
}
