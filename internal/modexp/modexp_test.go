package modexp

import (
	"math/big"
	"testing"
	"testing/quick"

	"randfill/internal/cache"
	"randfill/internal/rng"
)

func mustNew(t *testing.T, base, mod int64, w uint) *Exponentiator {
	t.Helper()
	e, err := New(big.NewInt(base), big.NewInt(mod), w)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExpMatchesBigInt(t *testing.T) {
	mod := big.NewInt(1000003) // prime
	base := big.NewInt(65537)
	for _, w := range []uint{1, 2, 4, 5, 8} {
		e, err := New(base, mod, w)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range []int64{0, 1, 2, 15, 16, 255, 1 << 20, 998877} {
			got := e.Exp(big.NewInt(x), nil)
			want := new(big.Int).Exp(base, big.NewInt(x), mod)
			if got.Cmp(want) != 0 {
				t.Errorf("w=%d x=%d: got %v want %v", w, x, got, want)
			}
		}
	}
}

func TestExpProperty(t *testing.T) {
	mod, _ := new(big.Int).SetString("340282366920938463463374607431768211507", 10)
	base := big.NewInt(3)
	e, err := New(base, mod, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [16]byte) bool {
		x := new(big.Int).SetBytes(raw[:])
		return e.Exp(x, nil).Cmp(new(big.Int).Exp(base, x, mod)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(big.NewInt(2), big.NewInt(100), 0); err == nil {
		t.Error("w=0 accepted")
	}
	if _, err := New(big.NewInt(2), big.NewInt(100), 9); err == nil {
		t.Error("w=9 accepted")
	}
	if _, err := New(big.NewInt(2), big.NewInt(0), 4); err == nil {
		t.Error("zero modulus accepted")
	}
}

func TestWindowDecomposition(t *testing.T) {
	e := mustNew(t, 2, 1000003, 4)
	if e.TableSize() != 16 {
		t.Errorf("TableSize = %d", e.TableSize())
	}
	if e.Windows(128) != 32 || e.Windows(127) != 32 || e.Windows(129) != 33 {
		t.Error("window counts wrong")
	}
	// Lookup sequence equals the exponent's windows MSB-first.
	x := big.NewInt(0xABCD)
	var got []int
	e.Exp(x, recorderFunc(func(index, window int) { got = append(got, index) }))
	want := []int{0xA, 0xB, 0xC, 0xD}
	if len(got) != len(want) {
		t.Fatalf("lookups %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lookups %v, want %v", got, want)
		}
	}
}

type recorderFunc func(index, window int)

func (f recorderFunc) Lookup(index, window int) { f(index, window) }

func TestLayout(t *testing.T) {
	lay := DefaultLayout()
	if got := len(lay.EntryLines(0)); got != 2 {
		t.Errorf("128-byte entry spans %d lines, want 2", got)
	}
	r := lay.TableRegion(16)
	if r.NumLines() != 32 {
		t.Errorf("16-entry table spans %d lines, want 32", r.NumLines())
	}
	for i := 0; i < 16; i++ {
		for _, l := range lay.EntryLines(i) {
			if !r.ContainsLine(l) {
				t.Fatalf("entry %d line %d outside table region", i, l)
			}
		}
	}
}

func sa32k(src *rng.Source) cache.Cache {
	return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
}

func TestSpyRecoversExponentUnderDemandFetch(t *testing.T) {
	// Percival-style attack: with demand fetch, one traced
	// exponentiation leaks the whole exponent.
	mod, _ := new(big.Int).SetString("340282366920938463463374607431768211507", 10)
	e, err := New(big.NewInt(7), mod, 4)
	if err != nil {
		t.Fatal(err)
	}
	secret, _ := new(big.Int).SetString("DEADBEEFCAFEBABE0123456789ABCDEF", 16)
	res := Spy(e, secret, DefaultLayout(), sa32k, rng.Window{}, 1)
	if !res.Complete {
		t.Fatal("attack observation incomplete under demand fetch")
	}
	if res.CorrectWindows != res.Windows {
		t.Fatalf("recovered %d/%d windows", res.CorrectWindows, res.Windows)
	}
	if res.Recovered.Cmp(secret) != 0 {
		t.Fatalf("recovered %x, want %x", res.Recovered, secret)
	}
}

func TestSpyDefeatedByRandomFill(t *testing.T) {
	// With a window covering the 32-line multiplier table, the observed
	// entry is a random neighbor: recovery collapses to chance
	// (1/16 per window).
	mod, _ := new(big.Int).SetString("340282366920938463463374607431768211507", 10)
	e, err := New(big.NewInt(7), mod, 4)
	if err != nil {
		t.Fatal(err)
	}
	secret, _ := new(big.Int).SetString("DEADBEEFCAFEBABE0123456789ABCDEF", 16)
	res := Spy(e, secret, DefaultLayout(), sa32k, rng.Window{A: 32, B: 31}, 2)
	if res.Recovered.Cmp(secret) == 0 {
		t.Fatal("exponent recovered despite random fill")
	}
	// 32 windows at 1/16 chance each → expect ~2 correct; allow noise.
	if res.CorrectWindows > res.Windows/3 {
		t.Errorf("recovered %d/%d windows under random fill, want ≈ chance",
			res.CorrectWindows, res.Windows)
	}
}
