package modexp

import (
	"math/big"

	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// SpyResult reports a Percival-style Flush-Reload attack against one
// exponentiation.
type SpyResult struct {
	// Recovered is the exponent reconstructed from the observed table
	// entries (valid when Complete).
	Recovered *big.Int
	// Complete reports whether every window produced exactly one
	// observed entry.
	Complete bool
	// CorrectWindows counts windows whose observed entry matches the
	// true exponent window.
	CorrectWindows int
	// Windows is the total window count.
	Windows int
}

// Spy mounts the attack: for every window of the victim's exponentiation,
// the attacker flushes the multiplier table, lets the victim perform that
// window's lookup through the cache, and reloads each entry's lines to see
// which entry became cached. With demand fetch the observed entry IS the
// window's exponent bits; under random fill the observation is a random
// neighbor.
//
// The cache is built by mk; the victim's fill policy is the window vw.
func Spy(e *Exponentiator, x *big.Int, lay Layout, mk func(src *rng.Source) cache.Cache, vw rng.Window, seed uint64) SpyResult {
	src := rng.New(seed)
	c := mk(src.Split(1))
	eng := core.NewEngine(c, src.Split(2))
	eng.SetRR(vw.A, vw.B)

	entries := e.TableSize()
	region := lay.TableRegion(entries)
	nw := e.Windows(x.BitLen())

	res := SpyResult{Windows: nw, Complete: true}
	observed := make([]int, 0, nw)

	spy := &spyRec{
		eng:     eng,
		c:       c,
		lay:     lay,
		region:  region,
		entries: entries,
	}
	e.Exp(x, spy)

	for wi := 0; wi < nw; wi++ {
		truth := windowValue(x, nw-1-wi, e.w)
		obs := -1
		if wi < len(spy.observed) {
			obs = spy.observed[wi]
		}
		if obs < 0 {
			res.Complete = false
			obs = 0
		}
		if obs == truth {
			res.CorrectWindows++
		}
		observed = append(observed, obs)
	}

	// Reassemble the exponent from the observed windows (MSB first).
	rec := new(big.Int)
	for _, v := range observed {
		rec.Lsh(rec, e.w)
		rec.Or(rec, big.NewInt(int64(v)))
	}
	res.Recovered = rec
	return res
}

// spyRec interposes on each window's lookup: flush, victim access, reload.
type spyRec struct {
	eng      *core.Engine
	c        cache.Cache
	lay      Layout
	region   mem.Region
	entries  int
	observed []int
}

// Lookup implements Recorder: it performs the victim's cache accesses for
// entry `index` and then the attacker's flush+reload observation.
func (s *spyRec) Lookup(index, window int) {
	// Attacker flushes the whole table (plus the window slop).
	for _, l := range s.region.Lines() {
		s.c.Invalidate(l)
	}
	// Victim touches every line of the selected multiplier entry.
	for _, l := range s.lay.EntryLines(index) {
		s.eng.Access(l, false)
	}
	// Attacker reloads each entry's first line; a cached line marks the
	// entry as observed.
	obs := -1
	for i := 0; i < s.entries; i++ {
		if s.c.Probe(s.lay.EntryLines(i)[0]) {
			obs = i
			break
		}
	}
	s.observed = append(s.observed, obs)
}
